//! A minimal blocking HTTP client for the service's own tests and smoke
//! checks — the other half of the wire protocol in [`crate::http`].
//!
//! One request per connection (the server closes after responding), bodies
//! always carried with `Content-Length`, response read to EOF.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code and body bytes.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Raw header block (CRLF-joined, without the status line).
    pub headers: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy — good enough for assertions and logs).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// A response header's value (ASCII case-insensitive name match).
    pub fn header(&self, name: &str) -> Option<String> {
        self.headers.lines().find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim()
                .eq_ignore_ascii_case(name)
                .then(|| v.trim().to_owned())
        })
    }
}

/// Sends one request and reads the full response.  `target` is the
/// path-and-query, e.g. `/datasets/a/anonymize?k=3&m=2`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(630)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut stream = stream;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Convenience `GET`.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", target, b"")
}

/// Convenience `POST`.
pub fn post(addr: SocketAddr, target: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
    request(addr, "POST", target, body)
}

/// Client-side retry policy for 503 responses: capped exponential backoff
/// honouring the server's `Retry-After` hint, with a jitter-free
/// deterministic schedule (the same policy and responses always produce the
/// same delays).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay, including `Retry-After` hints.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry_index` (0-based): the larger of
    /// the deterministic exponential step and the server's `Retry-After`
    /// hint, capped at `max_delay`.
    pub fn delay(&self, retry_index: u32, retry_after: Option<Duration>) -> Duration {
        let backoff =
            crate::retry::capped_exponential(self.base_delay, self.max_delay, retry_index);
        backoff
            .max(retry_after.unwrap_or(Duration::ZERO))
            .min(self.max_delay)
    }
}

/// A response's `Retry-After` header as a duration (delta-seconds form
/// only, which is what the server emits).
pub fn retry_after(response: &ClientResponse) -> Option<Duration> {
    response
        .header("Retry-After")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs)
}

/// Like [`request`], but on a 503 the client backs off per `policy`
/// (honouring `Retry-After`) and retries, surfacing the last response once
/// attempts are exhausted.  Transport errors are not retried — the caller
/// cannot tell whether the request took effect.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    policy: &RetryPolicy,
) -> std::io::Result<ClientResponse> {
    let mut retry_index = 0u32;
    loop {
        let response = request(addr, method, target, body)?;
        if response.status != 503 || retry_index + 1 >= policy.max_attempts.max(1) {
            return Ok(response);
        }
        let hint = retry_after(&response);
        std::thread::sleep(policy.delay(retry_index, hint));
        retry_index += 1;
    }
}

/// Convenience retrying `POST` (see [`request_with_retry`]).
pub fn post_with_retry(
    addr: SocketAddr,
    target: &str,
    body: &[u8],
    policy: &RetryPolicy,
) -> std::io::Result<ClientResponse> {
    request_with_retry(addr, "POST", target, body, policy)
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| bad("response headers are not UTF-8"))?;
    let (status_line, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok(ClientResponse {
        status,
        headers: headers.to_owned(),
        body: raw[header_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_schedule_is_deterministic_capped_and_honours_retry_after() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        };
        // Jitter-free exponential: 50, 100, 200, 400ms...
        let plain: Vec<u64> = (0..4)
            .map(|i| policy.delay(i, None).as_millis() as u64)
            .collect();
        assert_eq!(plain, vec![50, 100, 200, 400]);
        // The same inputs always produce the same schedule.
        assert_eq!(policy.delay(2, None), policy.delay(2, None));
        // A Retry-After hint wins when it is longer than the backoff...
        assert_eq!(
            policy.delay(0, Some(Duration::from_secs(1))),
            Duration::from_secs(1)
        );
        // ...but never exceeds the cap.
        assert_eq!(
            policy.delay(0, Some(Duration::from_secs(3600))),
            Duration::from_secs(2)
        );
        // And a short hint does not shrink the exponential step.
        assert_eq!(
            policy.delay(3, Some(Duration::from_millis(1))),
            Duration::from_millis(400)
        );
    }

    #[test]
    fn retry_after_header_parses_delta_seconds_only() {
        let mk = |headers: &str| ClientResponse {
            status: 503,
            headers: headers.to_owned(),
            body: Vec::new(),
        };
        assert_eq!(
            retry_after(&mk("Retry-After: 7")),
            Some(Duration::from_secs(7))
        );
        assert_eq!(
            retry_after(&mk("retry-after:  2 ")),
            Some(Duration::from_secs(2))
        );
        assert_eq!(retry_after(&mk("Retry-After: soon")), None);
        assert_eq!(retry_after(&mk("Content-Length: 0")), None);
    }

    /// A fake one-shot server: answers 503 + `Retry-After: 0` for the first
    /// `busy_responses` connections, then 200.
    fn fake_flaky_server(busy_responses: usize) -> (SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut served = 0usize;
            loop {
                let (mut conn, _) = listener.accept().unwrap();
                // Read the full request head (the body is empty) before
                // replying, so closing the socket cannot RST unread bytes.
                let mut head = Vec::new();
                let mut buf = [0u8; 1024];
                while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                    match conn.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => head.extend_from_slice(&buf[..n]),
                    }
                }
                let reply = if served < busy_responses {
                    "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
                } else {
                    "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok"
                };
                conn.write_all(reply.as_bytes()).unwrap();
                drop(conn);
                served += 1;
                if served > busy_responses {
                    return served;
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn request_with_retry_rides_out_503s() {
        let (addr, server) = fake_flaky_server(2);
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        };
        let resp = request_with_retry(addr, "GET", "/healthz", b"", &policy).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(server.join().unwrap(), 3, "two 503s then the 200");
    }

    #[test]
    fn request_with_retry_surfaces_the_last_503_when_exhausted() {
        let (addr, server) = fake_flaky_server(usize::MAX);
        let policy = RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        };
        let resp = request_with_retry(addr, "GET", "/healthz", b"", &policy).unwrap();
        assert_eq!(resp.status, 503);
        drop(server); // the listener thread blocks on accept; leave it to the harness
    }

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, b"{}");
        assert_eq!(
            resp.header("content-type").as_deref(),
            Some("application/json")
        );
        assert_eq!(resp.header("missing"), None);
    }
}
