//! SIGTERM/SIGINT → a process-global shutdown flag.
//!
//! The workspace has no `libc` crate, so the handler is installed through a
//! direct `extern "C"` declaration of POSIX `signal(2)` (libc is always
//! linked on the platforms we target).  The handler body is
//! async-signal-safe by construction: it performs exactly one relaxed-free
//! atomic store and nothing else — no allocation, no locks, no I/O.  The
//! accept loop polls [`requested`] between accepts and turns the flag into
//! a graceful drain.
//!
//! This module is the crate's single, documented exception to the
//! workspace-wide `forbid(unsafe_code)` house rule (the crate root uses
//! `deny` + a scoped `allow` here): std offers no signal API at all, and
//! the alternative — shipping a hand-rolled signalfd/sigaction syscall
//! layer — would be strictly more unsafe code, not less.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; read by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or [`request`] called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Raises the shutdown flag programmatically — what the signal handler does,
/// callable from tests and from in-process shutdown handles.
pub fn request() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Clears the flag so a test can run several servers in one process.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Release);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the complete list of things that are
        // async-signal-safe AND useful here.
        super::request();
    }

    extern "C" {
        // POSIX `signal(2)`.  The return value (the previous handler, or
        // SIG_ERR) is pointer-sized; we never inspect it because the only
        // failure mode is an invalid signum, and ours are constants.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers (no-op off Unix).  Idempotent.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_round_trip() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
