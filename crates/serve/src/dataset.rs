//! Named datasets: one locked store + one chunk publication per name.
//!
//! Layout under the service data directory:
//!
//! ```text
//! data/
//!   <name>/
//!     store/                    crash-recoverable record store (WAL, segments)
//!     chunks/                   atomic ChunkDir publication (batch files + manifest)
//!     publication.chunks.json   flat single-file view, byte-identical to
//!                               `disassoc anonymize --out <prefix>` on the
//!                               same records and batch size
//! ```
//!
//! The [`Store`] and [`ChunkDir`] are opened lazily on first use and then
//! held open for the daemon's lifetime, so the store's advisory `LOCK` file
//! (→ [`disassoc_store::StoreError::Locked`]) excludes any other process — a second daemon
//! or a concurrent `disassoc ingest` — for as long as the dataset is served.
//! Lock ordering is store-then-publication everywhere, which makes the pair
//! deadlock-free.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::error::ServeError;
use disassoc_store::{ChunkDir, Store, StoreConfig};

/// Recovers from a poisoned mutex: a panicking worker must degrade that one
/// job to a 500, not wedge the dataset for the rest of the daemon's life.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One served dataset: its directories, lazily-opened handles, and the
/// pending-job counter backing the per-dataset backpressure bound.
pub struct DatasetHandle {
    name: String,
    dir: PathBuf,
    store: Mutex<Option<Store>>,
    publication: Mutex<Option<ChunkDir>>,
    pending_jobs: AtomicUsize,
    degraded: Mutex<Option<String>>,
}

impl DatasetHandle {
    fn new(name: &str, dir: PathBuf) -> DatasetHandle {
        DatasetHandle {
            name: name.to_owned(),
            dir,
            store: Mutex::new(None),
            publication: Mutex::new(None),
            pending_jobs: AtomicUsize::new(0),
            degraded: Mutex::new(None),
        }
    }

    /// The dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dataset's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store directory (exists once something was ingested).
    pub fn store_dir(&self) -> PathBuf {
        self.dir.join("store")
    }

    /// The chunk-publication directory.
    pub fn chunks_dir(&self) -> PathBuf {
        self.dir.join("chunks")
    }

    /// The flat single-file publication path.
    pub fn publication_path(&self) -> PathBuf {
        self.dir.join("publication.chunks.json")
    }

    /// Jobs currently queued or running against this dataset.
    pub fn pending_jobs(&self) -> usize {
        self.pending_jobs.load(Ordering::Acquire)
    }

    /// Claims a job slot if fewer than `depth` are pending; the caller must
    /// pair a successful claim with [`end_job`](Self::end_job).
    pub fn try_begin_job(&self, depth: usize) -> bool {
        self.pending_jobs
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < depth).then_some(n + 1)
            })
            .is_ok()
    }

    /// Releases a job slot claimed by [`try_begin_job`](Self::try_begin_job).
    pub fn end_job(&self) {
        self.pending_jobs.fetch_sub(1, Ordering::AcqRel);
    }

    /// Flips the dataset to degraded read-only mode after a persistent
    /// write failure.  Returns `true` when this call made the transition
    /// (so the caller can count it exactly once); the first reason sticks.
    /// Degraded mode lasts until the daemon restarts: the cause (a full
    /// disk, a sick device) needs operator attention, and reads — which
    /// keep serving the last complete publication — are unaffected.
    pub fn degrade(&self, reason: &str) -> bool {
        let mut guard = lock_unpoisoned(&self.degraded);
        if guard.is_some() {
            return false;
        }
        *guard = Some(reason.to_owned());
        true
    }

    /// The degradation reason, or `None` while the dataset accepts writes.
    pub fn degraded_reason(&self) -> Option<String> {
        lock_unpoisoned(&self.degraded).clone()
    }

    /// Whether the dataset is in degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        lock_unpoisoned(&self.degraded).is_some()
    }

    /// Runs `f` with the dataset's store, opening (and creating) it on
    /// first use and holding it — and its advisory lock — open afterwards.
    pub fn with_store<T>(
        &self,
        f: impl FnOnce(&mut Store) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let mut guard = lock_unpoisoned(&self.store);
        if guard.is_none() {
            std::fs::create_dir_all(&self.dir).map_err(ServeError::from)?;
            *guard = Some(Store::open(self.store_dir(), StoreConfig::default())?);
        }
        // lint:allow(panic, "the guard was filled two lines up under the same lock")
        f(guard.as_mut().expect("store opened above"))
    }

    /// Like [`with_store`](Self::with_store) but never blocks: `None` when
    /// another request or job currently holds the store (or it cannot be
    /// opened).  A store that exists on disk but was not touched yet this
    /// run — a dataset rediscovered after a restart — is opened here, so
    /// the admin surface reports real record counts, not `null`.
    pub fn try_with_store<T>(&self, f: impl FnOnce(&mut Store) -> T) -> Option<T> {
        let mut guard = match self.store.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        if guard.is_none() {
            if !self.store_exists() {
                return None;
            }
            *guard = Some(Store::open(self.store_dir(), StoreConfig::default()).ok()?);
        }
        guard.as_mut().map(f)
    }

    /// Whether the store has ever been materialized on disk (ingested into),
    /// by this process or a previous one.
    pub fn store_exists(&self) -> bool {
        Store::exists(self.store_dir())
    }

    /// Runs `f` with the dataset's [`ChunkDir`], opening it on first use.
    /// All publication access — staging, committing, reading — goes through
    /// this single long-lived instance, so readers can never garbage-collect
    /// a concurrent job's staged-but-uncommitted batch files.
    pub fn with_publication<T>(
        &self,
        f: impl FnOnce(&mut ChunkDir) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let mut guard = lock_unpoisoned(&self.publication);
        if guard.is_none() {
            std::fs::create_dir_all(&self.dir).map_err(ServeError::from)?;
            *guard = Some(ChunkDir::open(self.chunks_dir())?);
        }
        // lint:allow(panic, "the guard was filled two lines up under the same lock")
        f(guard.as_mut().expect("publication opened above"))
    }

    /// Flushes and closes the store (if open) so a graceful shutdown leaves
    /// nothing in the memtable that the WAL has not already made
    /// recoverable — and releases the advisory lock, letting a successor
    /// (next daemon, CLI) take the dataset over immediately.
    pub fn shutdown_flush(&self) -> Result<(), ServeError> {
        let mut guard = lock_unpoisoned(&self.store);
        let flushed = match guard.as_mut() {
            Some(store) => store.flush().map_err(ServeError::from),
            None => Ok(()),
        };
        // Close (and unlock) even when the flush failed: everything
        // acknowledged is already in the WAL, and holding the lock would
        // only block the successor's recovery.
        *guard = None;
        *lock_unpoisoned(&self.publication) = None;
        flushed
    }
}

/// Validates a dataset name: it becomes a directory name, so the alphabet
/// is conservative and traversal is impossible by construction.
pub fn validate_name(name: &str) -> Result<(), ServeError> {
    if name.is_empty() || name.len() > 64 {
        return Err(ServeError::BadRequest(format!(
            "dataset name must be 1..=64 characters, got {}",
            name.len()
        )));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    {
        return Err(ServeError::BadRequest(format!(
            "dataset name {name:?} may only contain [A-Za-z0-9._-]"
        )));
    }
    if name.starts_with('.') {
        return Err(ServeError::BadRequest(format!(
            "dataset name {name:?} may not start with '.'"
        )));
    }
    Ok(())
}

/// The set of served datasets, keyed by name.
pub struct Registry {
    data_dir: PathBuf,
    datasets: Mutex<BTreeMap<String, Arc<DatasetHandle>>>,
}

impl Registry {
    /// Opens (creating if needed) the service data directory and registers
    /// every subdirectory that already holds a store or a publication.
    pub fn open(data_dir: impl Into<PathBuf>) -> std::io::Result<Registry> {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)?;
        let mut datasets = BTreeMap::new();
        for entry in std::fs::read_dir(&data_dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            if validate_name(&name).is_err() {
                continue;
            }
            let dir = entry.path();
            if Store::exists(dir.join("store")) || dir.join("chunks").is_dir() {
                datasets.insert(name.clone(), Arc::new(DatasetHandle::new(&name, dir)));
            }
        }
        Ok(Registry {
            data_dir,
            datasets: Mutex::new(datasets),
        })
    }

    /// The service data directory.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// The handle for `name`, if the dataset exists.
    pub fn get(&self, name: &str) -> Option<Arc<DatasetHandle>> {
        lock_unpoisoned(&self.datasets).get(name).cloned()
    }

    /// The handle for `name`, creating the dataset if it does not exist yet
    /// (the ingest route's behaviour; read routes use [`get`](Self::get)).
    pub fn get_or_create(&self, name: &str) -> Result<Arc<DatasetHandle>, ServeError> {
        validate_name(name)?;
        let mut guard = lock_unpoisoned(&self.datasets);
        if let Some(handle) = guard.get(name) {
            return Ok(Arc::clone(handle));
        }
        let handle = Arc::new(DatasetHandle::new(name, self.data_dir.join(name)));
        guard.insert(name.to_owned(), Arc::clone(&handle));
        Ok(handle)
    }

    /// All registered datasets, in name order.
    pub fn list(&self) -> Vec<Arc<DatasetHandle>> {
        lock_unpoisoned(&self.datasets).values().cloned().collect()
    }

    /// Flushes every open store; called once during graceful shutdown.
    pub fn shutdown_flush(&self) {
        for handle in self.list() {
            // A failed flush must not abort the drain of the others; the
            // WAL already holds everything acknowledged, so even a skipped
            // flush loses nothing on restart.
            let _ = handle.shutdown_flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "disassoc_serve_registry_{tag}_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn names_are_validated() {
        assert!(validate_name("transactions-2026_v1.a").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("../escape").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name(".hidden").is_err());
        assert!(validate_name(&"x".repeat(65)).is_err());
    }

    #[test]
    fn get_or_create_reuses_one_handle_per_name() {
        let reg = Registry::open(tmpdir("reuse")).unwrap();
        let a = reg.get_or_create("a").unwrap();
        let b = reg.get_or_create("a").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn job_slots_are_bounded() {
        let reg = Registry::open(tmpdir("slots")).unwrap();
        let h = reg.get_or_create("a").unwrap();
        assert!(h.try_begin_job(2));
        assert!(h.try_begin_job(2));
        assert!(!h.try_begin_job(2));
        h.end_job();
        assert!(h.try_begin_job(2));
        assert_eq!(h.pending_jobs(), 2);
    }

    #[test]
    fn existing_datasets_are_discovered_on_open() {
        let dir = tmpdir("discover");
        {
            let reg = Registry::open(&dir).unwrap();
            let h = reg.get_or_create("found").unwrap();
            h.with_store(|st| {
                st.append_batch(&[transact::Record::from_ids([transact::TermId::new(1)])])?;
                st.flush()?;
                Ok(())
            })
            .unwrap();
            // Dropping the registry (and its open store) releases the lock.
        }
        let reg = Registry::open(&dir).unwrap();
        let h = reg.get("found").expect("rediscovered from disk");
        let len = h.with_store(|st| Ok(st.len())).unwrap();
        assert_eq!(len, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
