//! A small fixed worker pool with a drain-on-shutdown contract.
//!
//! Jobs are boxed closures; the per-dataset admission bound lives one layer
//! up (the router claims a [`crate::dataset::DatasetHandle`] job slot before
//! submitting, and the job releases it when done), so the pool itself only
//! knows about two states: accepting and draining.  Draining executes every
//! job already queued — that is what makes SIGTERM lose no acknowledged
//! work — and then lets the workers exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// Shared submission handle: cheap to clone into connection threads.
#[derive(Clone)]
pub struct JobSubmitter {
    queue: Arc<Queue>,
}

impl JobSubmitter {
    /// Enqueues `job` unless the pool is draining; `false` means rejected
    /// (the caller turns that into 503).
    pub fn try_submit(&self, job: Job) -> bool {
        let mut state = self
            .queue
            .jobs
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if state.draining {
            return false;
        }
        state.jobs.push_back(job);
        drop(state);
        self.queue.ready.notify_one();
        true
    }
}

/// The pool: `n` worker threads pulling off one shared queue.
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Starts `n` (at least 1) workers.  Fails when the OS refuses to spawn
    /// a worker thread (resource exhaustion); already-started workers are
    /// shut down by the pool's drop in that case.
    pub fn start(n: usize) -> std::io::Result<WorkerPool> {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (0..n.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(WorkerPool { queue, workers })
    }

    /// A cloneable submission handle.
    pub fn submitter(&self) -> JobSubmitter {
        JobSubmitter {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Stops accepting new jobs, runs every job already queued, and joins
    /// the workers.  This is the graceful-shutdown drain: a job whose
    /// submission succeeded always executes (and sends its reply) before
    /// the pool goes away.
    pub fn drain(self) {
        {
            let mut state = self
                .queue
                .jobs
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state.draining = true;
        }
        self.queue.ready.notify_all();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut state = queue
                .jobs
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.draining {
                    return;
                }
                state = queue
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // A panicking job must not take the worker (or, transitively, the
        // whole drain contract) down with it; the router-side wrapper turns
        // the panic into a 500 reply before we get here.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_reply() {
        let pool = WorkerPool::start(2).unwrap();
        let submitter = pool.submitter();
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            assert!(submitter.try_submit(Box::new(move || {
                tx.send(i).unwrap();
            })));
        }
        let mut got: Vec<i32> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        pool.drain();
    }

    #[test]
    fn drain_runs_every_queued_job_then_rejects() {
        // One worker → the queue really backs up before the drain.
        let pool = WorkerPool::start(1).unwrap();
        let submitter = pool.submitter();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let ran = Arc::clone(&ran);
            assert!(submitter.try_submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                ran.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 16, "drain ran every queued job");
        assert!(
            !submitter.try_submit(Box::new(|| {})),
            "submissions after drain are rejected"
        );
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::start(1).unwrap();
        let submitter = pool.submitter();
        assert!(submitter.try_submit(Box::new(|| panic!("job boom"))));
        let (tx, rx) = mpsc::channel();
        assert!(submitter.try_submit(Box::new(move || tx.send(42).unwrap())));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
        pool.drain();
    }
}
