//! Zero-dependency observability for the disassociation pipeline.
//!
//! Three layers, all hand-rolled on std so the crate builds offline and the
//! *disabled* path stays out of profiles:
//!
//! - [`metrics`]: a process-global registry of named counters, gauges, and
//!   histograms.  Every mutation is gated on one relaxed atomic load of a
//!   shared enabled flag, so a disabled counter costs a single predictable
//!   branch — cheap enough to leave in release builds of the hot loops.
//! - [`trace`]: JSON-lines spans and events with monotonic microsecond
//!   timestamps and small per-thread ids, written to a caller-installed sink.
//!   Tracing is opt-in per process and entirely skipped when no sink is
//!   installed.
//! - [`warn`]: diagnostics that always reach stderr for humans and are
//!   mirrored into the trace (when active) so machine consumers see them in
//!   context, keeping stdout machine-parseable.
//!
//! The registry is static: instrumented crates reference counters from
//! [`metrics::counters`] directly, and [`metrics::snapshot`] walks the full
//! catalog, so a snapshot always lists every known counter (zeros included).

#![forbid(unsafe_code)]

pub mod metrics;
pub mod names;
pub mod trace;

/// Emits a warning: always printed to stderr, and mirrored into the trace as
/// a `warn` record (with the given attributes plus the message) when tracing
/// is active.  `name` is a stable machine-readable identifier such as
/// `refine.pass_cap`; `message` is the human-readable text.
pub fn warn(name: &str, message: &str, attrs: &[(&str, trace::Attr<'_>)]) {
    eprintln!("warning: {message}");
    if trace::enabled() {
        let mut full: Vec<(&str, trace::Attr<'_>)> = Vec::with_capacity(attrs.len() + 1);
        full.push(("message", trace::Attr::Str(message)));
        full.extend_from_slice(attrs);
        trace::record("warn", name, None, &full);
    }
}

/// Escapes a string for embedding in a JSON string literal.  Metric names
/// are plain ASCII identifiers, but trace attributes may carry arbitrary
/// text (paths, messages), so escaping is always applied.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` the way the rest of the repo's hand-rolled JSON does:
/// finite values via `{}` (shortest round-trip in Rust), non-finite mapped
/// to `null` since JSON has no NaN/Infinity.
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        let s = format!("{value}");
        // `{}` prints integral floats without a dot; keep them typed as
        // floats so consumers round-trip the field stably.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn float_formatting_keeps_values_typed_and_json_legal() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
