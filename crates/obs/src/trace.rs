//! JSON-lines tracing: spans and events with monotonic timestamps.
//!
//! One record per line, written to a caller-installed sink (normally the
//! `--trace FILE` argument).  Record schema:
//!
//! ```json
//! {"ts_us": 1234, "tid": 1, "kind": "event", "name": "pipeline.batch", "attrs": {"batch": 0, "records": 256}}
//! {"ts_us": 1234, "tid": 2, "kind": "span",  "name": "core.anonymize",  "dur_us": 1870, "attrs": {...}}
//! {"ts_us": 1234, "tid": 1, "kind": "warn",  "name": "refine.pass_cap", "attrs": {"message": "...", ...}}
//! ```
//!
//! - `ts_us`: microseconds since the first trace record of the process
//!   (monotonic clock, immune to wall-clock steps).  For spans it is the
//!   span's *start*.
//! - `tid`: a small id assigned to each OS thread on first use (1, 2, ...),
//!   stable for the thread's lifetime.
//! - `attrs`: flat string/integer/float key–value pairs for attribution
//!   (batch index, cluster count, pass number, ...).
//!
//! Tracing is process-global and off by default; every emit site first
//! checks [`enabled`], a relaxed atomic load.  Emission itself takes a
//! mutex — traces record batch/phase-granularity happenings, not per-record
//! hot-loop activity, so contention is negligible.

use std::cell::Cell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
static ANCHOR: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    TID.with(|slot| {
        let mut id = slot.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            slot.set(id);
        }
        id
    })
}

fn now_us() -> u64 {
    let anchor = ANCHOR.get_or_init(Instant::now);
    anchor.elapsed().as_micros() as u64
}

/// Whether a trace sink is installed and active.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a trace sink and activates tracing.  Replaces (and flushes) any
/// previously installed sink.
pub fn init_writer(writer: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().expect("trace sink lock poisoned");
    if let Some(mut old) = sink.replace(writer) {
        let _ = old.flush();
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Creates (truncating) `path` and traces into it, buffered.
pub fn init_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    init_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Deactivates tracing and flushes + drops the sink.  Returns any flush
/// error so CLI callers can surface short-write failures.
pub fn shutdown() -> io::Result<()> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut sink = SINK.lock().expect("trace sink lock poisoned");
    match sink.take() {
        Some(mut writer) => writer.flush(),
        None => Ok(()),
    }
}

/// An attribute value: traces carry flat scalar attributes only.
#[derive(Debug, Clone, Copy)]
pub enum Attr<'a> {
    /// Unsigned integer attribute (counts, indices, ids).
    U64(u64),
    /// Float attribute (seconds, ratios).
    F64(f64),
    /// String attribute (paths, messages, labels).
    Str(&'a str),
}

fn write_attrs(out: &mut String, attrs: &[(&str, Attr<'_>)]) {
    out.push('{');
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        crate::json_escape_into(out, key);
        out.push_str("\": ");
        match value {
            Attr::U64(v) => out.push_str(&format!("{v}")),
            Attr::F64(v) => out.push_str(&crate::json_f64(*v)),
            Attr::Str(s) => {
                out.push('"');
                crate::json_escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Emits one trace record.  `kind` is `event`, `span`, or `warn`;
/// `dur_us` is present for spans only.  Used by [`event`], [`Span`], and
/// [`crate::warn`]; instrumented code normally calls those instead.
pub(crate) fn record(kind: &str, name: &str, dur_us: Option<u64>, attrs: &[(&str, Attr<'_>)]) {
    record_at(now_us(), kind, name, dur_us, attrs);
}

fn record_at(ts_us: u64, kind: &str, name: &str, dur_us: Option<u64>, attrs: &[(&str, Attr<'_>)]) {
    let mut line = String::with_capacity(128);
    line.push_str(&format!(
        "{{\"ts_us\": {ts_us}, \"tid\": {}, \"kind\": \"{kind}\", \"name\": \"",
        thread_id()
    ));
    crate::json_escape_into(&mut line, name);
    line.push('"');
    if let Some(dur) = dur_us {
        line.push_str(&format!(", \"dur_us\": {dur}"));
    }
    line.push_str(", \"attrs\": ");
    write_attrs(&mut line, attrs);
    line.push_str("}\n");
    let mut sink = SINK.lock().expect("trace sink lock poisoned");
    if let Some(writer) = sink.as_mut() {
        // A failing sink must not take down the pipeline; the final flush in
        // `shutdown` reports persistent errors.
        let _ = writer.write_all(line.as_bytes());
    }
}

/// Emits a point-in-time event.  A no-op (one relaxed load) when tracing is
/// inactive.
pub fn event(name: &str, attrs: &[(&str, Attr<'_>)]) {
    if enabled() {
        record("event", name, None, attrs);
    }
}

/// An in-flight span.  Created by [`span`]; emits one `span` record with
/// its start timestamp and duration when finished (explicitly via
/// [`Span::finish`] with extra attributes, or on drop without them).
pub struct Span {
    // None when tracing was inactive at creation: the span is inert.
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: String,
    start_us: u64,
    started: Instant,
    done: bool,
}

/// Starts a span.  When tracing is inactive this returns an inert guard and
/// costs one relaxed load.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some(SpanInner {
            name: name.to_string(),
            start_us: now_us(),
            started: Instant::now(),
            done: false,
        }),
    }
}

impl Span {
    /// Finishes the span now, attaching `attrs` to the emitted record.
    pub fn finish(mut self, attrs: &[(&str, Attr<'_>)]) {
        if let Some(inner) = self.inner.as_mut() {
            inner.done = true;
            let dur = inner.started.elapsed().as_micros() as u64;
            record_at(inner.start_us, "span", &inner.name, Some(dur), attrs);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.as_mut() {
            if !inner.done {
                inner.done = true;
                let dur = inner.started.elapsed().as_micros() as u64;
                record_at(inner.start_us, "span", &inner.name, Some(dur), &[]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::{channel, Sender};

    // The trace sink is process-global; serialize tests that install one.
    static LOCK: Mutex<()> = Mutex::new(());

    // A Write that forwards lines to a channel, so the test can inspect
    // records without sharing a buffer with the global sink.
    struct ChannelWriter(Sender<String>);

    impl Write for ChannelWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let _ = self.0.send(String::from_utf8_lossy(buf).into_owned());
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_spans_and_warns_emit_one_json_line_each() {
        let _guard = LOCK.lock().unwrap();
        let (tx, rx) = channel();
        init_writer(Box::new(ChannelWriter(tx)));

        event(
            "unit.event",
            &[("n", Attr::U64(3)), ("label", Attr::Str("a\"b"))],
        );
        let s = span("unit.span");
        s.finish(&[("ratio", Attr::F64(0.5))]);
        crate::warn("unit.warn", "something happened", &[("code", Attr::U64(7))]);
        shutdown().unwrap();

        let lines: Vec<String> = rx.try_iter().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\": \"event\""));
        assert!(lines[0].contains("\"name\": \"unit.event\""));
        assert!(lines[0].contains("\"label\": \"a\\\"b\""));
        assert!(lines[1].contains("\"kind\": \"span\""));
        assert!(lines[1].contains("\"dur_us\": "));
        assert!(lines[1].contains("\"ratio\": 0.5"));
        assert!(lines[2].contains("\"kind\": \"warn\""));
        assert!(lines[2].contains("\"message\": \"something happened\""));
        for line in &lines {
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1);
        }
    }

    #[test]
    fn inactive_tracing_emits_nothing_and_spans_are_inert() {
        let _guard = LOCK.lock().unwrap();
        if enabled() {
            shutdown().unwrap();
        }
        event("unit.ignored", &[]);
        let s = span("unit.ignored");
        drop(s);
        // Nothing to assert against directly (no sink); reaching here
        // without panicking or blocking is the contract.
    }
}
