//! Process-global metrics registry: counters, gauges, histograms.
//!
//! All instruments share one [`AtomicBool`] enabled flag.  Instrumented code
//! calls [`Counter::inc`] unconditionally; when metrics are disabled the
//! call is a relaxed load plus an untaken branch, which is the whole point —
//! the hot loops (checker trials, join attempts, WAL appends) keep their
//! instrumentation in release builds without measurable cost.
//!
//! Instruments are `static`s declared in [`counters`], [`gauges`], and
//! [`histograms`]; [`snapshot`] walks those catalogs, so every snapshot
//! lists the complete set of known metrics, including zeros.  That makes
//! "the counter is absent" and "the counter is zero" distinguishable for
//! consumers of `--metrics-out` files.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on for the whole process.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns metric recording off for the whole process.  Values already
/// recorded are kept; use [`reset_all`] to clear them.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether metric recording is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing counter.  Const-constructible so instruments
/// can live in `static`s with no registration step.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter; `name` is dotted lowercase (`layer.event`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.  A no-op (one relaxed load + branch) while disabled.
    #[inline(always)]
    pub fn inc(&self) {
        if enabled() {
            self.value.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n`.  A no-op (one relaxed load + branch) while disabled.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description for summaries and docs.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (test support).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instrument for level-style measurements.
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge; `name` is dotted lowercase (`layer.level`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// Records the current level.  A no-op while disabled.
    #[inline(always)]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description for summaries and docs.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Last recorded level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (test support).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets in a [`Histogram`]; bucket `i` holds
/// values whose bit length is `i` (bucket 0 is the value zero), with the
/// final bucket absorbing everything wider.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A log2-bucketed histogram of `u64` samples (e.g. microsecond latencies).
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Creates a histogram; `name` is dotted lowercase (`layer.latency_us`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        // `AtomicU64` is not Copy; an inline-const element keeps the whole
        // instrument const-constructible without a shared interior-mutable
        // const item.
        Self {
            name,
            help,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample.  A no-op while disabled.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            let bucket = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
            self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description for summaries and docs.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Resets all buckets (test support).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    fn bucket_values(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

/// The counter catalog.  Names are stable identifiers: `--metrics-out`
/// files, the README counter table, and CI greps all key off them.
pub mod counters {
    use super::Counter;

    macro_rules! catalog {
        ($($ident:ident => ($name:literal, $help:literal);)+) => {
            $(
                #[doc = $help]
                pub static $ident: Counter = Counter::new($name, $help);
            )+
            /// Every registered counter, in declaration order.
            pub static ALL: &[&Counter] = &[$(&$ident),+];
        };
    }

    catalog! {
        // --- core: phases -------------------------------------------------
        CORE_ANONYMIZE_RUNS => ("core.anonymize_runs", "Full HORPART→VERPART→REFINE runs over a batch");
        CORE_HORPART_CLUSTERS => ("core.horpart_clusters", "Clusters produced by horizontal partitioning (post-merge)");
        CORE_REFINE_PASSES => ("core.refine_passes", "REFINE passes executed across all runs");
        CORE_REFINE_CAPPED => ("core.refine_capped", "REFINE runs that hit the pass cap without converging");
        // --- core: REFINE join decisions (Equation 1) ---------------------
        CORE_JOIN_ATTEMPTS => ("core.join_attempts", "Cluster-pair join attempts evaluated by REFINE");
        CORE_JOINS_ACCEPTED => ("core.joins_accepted", "Join attempts that produced a joint cluster");
        CORE_JOINS_REJECTED => ("core.joins_rejected", "Join attempts rejected (all causes)");
        CORE_JOINS_REJECTED_EQ1 => ("core.joins_rejected_eq1", "Join attempts rejected by the Equation-1 support test");
        // --- core: anonymity-checker trials by path -----------------------
        CORE_CHECKER_TRIALS_M2_TRIANGLE => ("core.checker_trials_m2_triangle", "Checker trials on the m=2 triangular pair-count path");
        CORE_CHECKER_TRIALS_M2_SPARSE => ("core.checker_trials_m2_sparse", "Checker trials on the m=2 sparse pair-count path");
        CORE_CHECKER_TRIALS_PACKED => ("core.checker_trials_packed", "Checker trials on the packed m-combination path");
        CORE_CHECKER_TRIALS_FALLBACK => ("core.checker_trials_fallback", "Checker trials on the reference fallback path");
        // --- store --------------------------------------------------------
        STORE_WAL_APPENDS => ("store.wal_appends", "Batches appended to the write-ahead log");
        STORE_WAL_APPEND_BYTES => ("store.wal_append_bytes", "Bytes appended to the write-ahead log");
        STORE_MEMTABLE_SPILLS => ("store.memtable_spills", "Memtable spills to a sealed segment");
        STORE_SEGMENT_SEALS => ("store.segment_seals", "Segments sealed (spills and compaction rewrites)");
        STORE_COMPACTION_RUNS => ("store.compaction_runs", "Compaction passes executed");
        STORE_COMPACTION_MERGES => ("store.compaction_merges", "Segment merge operations performed by compaction");
        STORE_COMPACTION_BYTES_READ => ("store.compaction_bytes_read", "Bytes read from segments replaced by compaction");
        STORE_COMPACTION_BYTES_WRITTEN => ("store.compaction_bytes_written", "Bytes written to replacement segments by compaction");
        STORE_CHUNKS_STAGED => ("store.chunks_staged", "Chunk batch files staged for publication");
        STORE_CHUNKS_SKIPPED => ("store.chunks_skipped", "Chunk batch stagings skipped as byte-identical to the published file");
        STORE_CHUNK_COMMITS => ("store.chunk_commits", "Two-phase chunk publications committed");
        // --- incremental append -------------------------------------------
        INCR_APPENDS => ("incr.appends", "Incremental append operations");
        INCR_ROUTED_RECORDS => ("incr.routed_records", "Appended records routed into an existing cluster slot");
        INCR_DIRTY_CLUSTERS => ("incr.dirty_clusters", "Clusters marked dirty by appends");
        INCR_BUDGET_OVERFLOWS => ("incr.budget_overflows", "Appended records diverted to overflow by the dirty-cluster budget");
        // --- serve (the `disassoc serve` daemon) --------------------------
        SERVE_REQUESTS => ("serve.requests", "HTTP requests accepted by the service");
        SERVE_REQUESTS_REJECTED => ("serve.requests_rejected", "HTTP requests answered with a 4xx/5xx status");
        SERVE_INGESTED_RECORDS => ("serve.ingested_records", "Records ingested over the socket into dataset stores");
        SERVE_ANONYMIZE_JOBS => ("serve.anonymize_jobs", "Anonymization jobs executed by the worker pool");
        SERVE_APPEND_JOBS => ("serve.append_jobs", "Incremental append jobs executed by the worker pool");
        SERVE_JOBS_REJECTED => ("serve.jobs_rejected", "Jobs rejected by backpressure (full per-dataset queue)");
        SERVE_JOB_RETRIES => ("serve.job_retries", "Write operations retried after a transient store error");
        SERVE_DATASETS_DEGRADED => ("serve.datasets_degraded", "Datasets flipped to degraded read-only mode by persistent write failures");
        // --- faults (the `disassoc-faults` failpoint registry) ------------
        FAULTS_INJECTED => ("faults.injected", "Faults injected by armed failpoints (errors, torn writes, crashes, delays)");
    }
}

/// The gauge catalog.
pub mod gauges {
    use super::Gauge;

    /// Records in the most recently anonymized batch.
    pub static CORE_LAST_BATCH_RECORDS: Gauge = Gauge::new(
        "core.last_batch_records",
        "Records in the most recently anonymized batch",
    );

    /// Every registered gauge, in declaration order.
    pub static ALL: &[&Gauge] = &[&CORE_LAST_BATCH_RECORDS];
}

/// The histogram catalog.
pub mod histograms {
    use super::Histogram;

    /// Per-batch anonymization wall time, in microseconds.
    pub static CORE_BATCH_MICROS: Histogram = Histogram::new(
        "core.batch_micros",
        "Per-batch anonymization wall time (microseconds)",
    );

    /// Every registered histogram, in declaration order.
    pub static ALL: &[&Histogram] = &[&CORE_BATCH_MICROS];
}

/// Resets every instrument to zero.  Test support: integration tests that
/// assert counter invariants reset between cases (and serialize on a lock,
/// since the registry is process-global).
pub fn reset_all() {
    for c in counters::ALL {
        c.reset();
    }
    for g in gauges::ALL {
        g.reset();
    }
    for h in histograms::ALL {
        h.reset();
    }
}

/// A point-in-time copy of every registered instrument.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter name → value, in catalog order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge name → value, in catalog order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram name → (count, sum, buckets), in catalog order.
    pub histograms: Vec<(&'static str, u64, u64, [u64; HISTOGRAM_BUCKETS])>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the snapshot as a JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count, sum, buckets}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            crate::json_escape_into(&mut out, name);
            out.push_str(&format!("\": {value}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            crate::json_escape_into(&mut out, name);
            out.push_str(&format!("\": {value}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, count, sum, buckets)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            crate::json_escape_into(&mut out, name);
            out.push_str(&format!(
                "\": {{\"count\": {count}, \"sum\": {sum}, \"buckets\": ["
            ));
            let last_nonzero = buckets.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
            for (j, b) in buckets[..last_nonzero].iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{b}"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a human-readable summary: nonzero counters grouped and
    /// aligned, gauges, and histogram count/mean lines.  Zero-valued
    /// instruments are elided — the JSON form is the complete record.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|(n, _)| n.len())
            .chain(
                self.gauges
                    .iter()
                    .filter(|(_, v)| *v != 0)
                    .map(|(n, _)| n.len()),
            )
            .max()
            .unwrap_or(0);
        let mut any = false;
        for (name, value) in &self.counters {
            if *value != 0 {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
                any = true;
            }
        }
        for (name, value) in &self.gauges {
            if *value != 0 {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
                any = true;
            }
        }
        for (name, count, sum, _) in &self.histograms {
            if *count != 0 {
                let mean = *sum as f64 / *count as f64;
                out.push_str(&format!("  {name}  count {count}  mean {mean:.1}\n"));
                any = true;
            }
        }
        if !any {
            out.push_str("  (no nonzero metrics recorded)\n");
        }
        out
    }
}

/// Captures the current value of every registered instrument.
pub fn snapshot() -> Snapshot {
    Snapshot {
        counters: counters::ALL.iter().map(|c| (c.name(), c.get())).collect(),
        gauges: gauges::ALL.iter().map(|g| (g.name(), g.get())).collect(),
        histograms: histograms::ALL
            .iter()
            .map(|h| (h.name(), h.count(), h.sum(), h.bucket_values()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; serialize tests that mutate it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_instruments_record_nothing() {
        let _guard = LOCK.lock().unwrap();
        disable();
        reset_all();
        counters::CORE_JOIN_ATTEMPTS.inc();
        gauges::CORE_LAST_BATCH_RECORDS.set(7);
        histograms::CORE_BATCH_MICROS.record(123);
        assert_eq!(counters::CORE_JOIN_ATTEMPTS.get(), 0);
        assert_eq!(gauges::CORE_LAST_BATCH_RECORDS.get(), 0);
        assert_eq!(histograms::CORE_BATCH_MICROS.count(), 0);
    }

    #[test]
    fn enabled_instruments_record_and_snapshot_lists_full_catalog() {
        let _guard = LOCK.lock().unwrap();
        reset_all();
        enable();
        counters::CORE_JOIN_ATTEMPTS.add(3);
        gauges::CORE_LAST_BATCH_RECORDS.set(11);
        histograms::CORE_BATCH_MICROS.record(0);
        histograms::CORE_BATCH_MICROS.record(1_000_000);
        disable();

        let snap = snapshot();
        assert_eq!(snap.counter("core.join_attempts"), Some(3));
        // Untouched counters are present as zeros, not absent.
        assert_eq!(snap.counter("store.wal_appends"), Some(0));
        assert_eq!(snap.counters.len(), counters::ALL.len());
        let (_, count, sum, buckets) = snap.histograms[0];
        assert_eq!((count, sum), (2, 1_000_000));
        assert_eq!(buckets[0], 1); // the zero sample
        assert_eq!(buckets.iter().sum::<u64>(), 2);

        let json = snap.to_json();
        assert!(json.contains("\"core.join_attempts\": 3"));
        assert!(json.contains("\"histograms\""));
        let summary = snap.render_summary();
        assert!(summary.contains("core.join_attempts"));
        assert!(!summary.contains("store.wal_appends")); // zero → elided
        reset_all();
    }
}
