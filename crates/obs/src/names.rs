//! Canonical trace-event and warning names.
//!
//! Instrument (counter/gauge/histogram) names live in the [`crate::metrics`]
//! catalogs; the names of trace events and warnings — equally stable
//! identifiers, asserted on by integration tests and scraped from trace
//! files — live here.  Together the two modules are the `disassoc-lint`
//! DL004 registry: any obs-shaped name literal elsewhere in the workspace
//! must match an entry in one of them, which makes a typo'd assertion or an
//! inline-minted name a lint error instead of silent drift.
//!
//! Instrumented code should reference these constants rather than repeat
//! the literals.

/// Per-run anonymization summary event (records, clusters, phase seconds).
pub const EVENT_CORE_ANONYMIZE: &str = "core.anonymize";

/// Per-batch pipeline completion event (batch index, records, seconds).
pub const EVENT_PIPELINE_BATCH: &str = "pipeline.batch";

/// Incremental append outcome event (generation, dirty/reused/new clusters).
pub const EVENT_INCR_APPEND: &str = "incr.append";

/// Warning: REFINE hit its pass cap without converging.
pub const WARN_REFINE_PASS_CAP: &str = "refine.pass_cap";

/// Warning: unsealed records were recovered from the write-ahead log.
pub const WARN_STORE_WAL_RECOVERY: &str = "store.wal_recovery";

/// Every registered trace/warning name, in declaration order.
pub const ALL: &[&str] = &[
    EVENT_CORE_ANONYMIZE,
    EVENT_PIPELINE_BATCH,
    EVENT_INCR_APPEND,
    WARN_REFINE_PASS_CAP,
    WARN_STORE_WAL_RECOVERY,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_dotted_lowercase() {
        let mut sorted: Vec<&str> = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len(), "duplicate trace names");
        for name in ALL {
            assert!(
                name.contains('.')
                    && name.chars().all(|c| c.is_ascii_lowercase()
                        || c.is_ascii_digit()
                        || c == '_'
                        || c == '.'),
                "{name} is not dotted lowercase"
            );
        }
    }
}
