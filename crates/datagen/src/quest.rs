//! IBM Quest–style market-basket generator.
//!
//! The paper's synthetic experiments (Figures 8 and 10) use "IBM's Quest
//! market-basket synthetic data generator ... 1M records, 5k term domain and
//! 10 average record length".  The original binary is no longer distributed,
//! so this module re-implements the generative model described in the
//! Agrawal–Srikant papers that introduced it:
//!
//! 1. A pool of `num_patterns` *potentially frequent itemsets* is created.
//!    Pattern lengths follow a Poisson distribution around
//!    `avg_pattern_len`; a fraction (`correlation`) of each pattern's items
//!    is copied from the previous pattern, the rest are drawn from a skewed
//!    (Zipf) item distribution.
//! 2. Each pattern gets an exponentially distributed weight (normalized to a
//!    probability) and a *corruption level*.
//! 3. Each transaction's length is Poisson around `avg_transaction_len`.
//!    Patterns are picked by weight and added to the transaction, dropping
//!    each item independently with the pattern's corruption probability;
//!    oversized patterns only fit in half of the time.
//!
//! The output is a [`transact::Dataset`] over the dense domain
//! `0..domain_size`.

use crate::zipf::{sample_weighted, PoissonSampler, ZipfSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use transact::{Dataset, Record, TermId};

/// Configuration of the Quest-style generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuestConfig {
    /// Number of transactions (records) to generate, `|D|`.
    pub num_transactions: usize,
    /// Domain size `|T|`.
    pub domain_size: usize,
    /// Average transaction length (the paper's default is 10).
    pub avg_transaction_len: f64,
    /// Number of potentially frequent patterns (Quest default: 2000, scaled
    /// with the domain here).
    pub num_patterns: usize,
    /// Average pattern length (Quest default: 4).
    pub avg_pattern_len: f64,
    /// Fraction of items of a pattern copied from the previous pattern
    /// (Quest default: 0.5).
    pub correlation: f64,
    /// Mean corruption level: probability of dropping an item when a pattern
    /// is instantiated (Quest default: 0.5).
    pub corruption: f64,
    /// Zipf exponent of the item distribution used to fill patterns.
    pub item_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            num_transactions: 10_000,
            domain_size: 1_000,
            avg_transaction_len: 10.0,
            num_patterns: 200,
            avg_pattern_len: 4.0,
            correlation: 0.5,
            corruption: 0.5,
            item_skew: 0.9,
            seed: 42,
        }
    }
}

impl QuestConfig {
    /// The configuration matching the paper's synthetic default:
    /// 1M records, 5k domain, average record length 10.
    ///
    /// `scale` divides the record count so scaled-down runs stay laptop-sized
    /// (`scale = 1` reproduces the full-size workload).
    pub fn paper_default(scale: usize) -> Self {
        let scale = scale.max(1);
        QuestConfig {
            num_transactions: 1_000_000 / scale,
            domain_size: 5_000,
            avg_transaction_len: 10.0,
            num_patterns: 1_000,
            ..QuestConfig::default()
        }
    }

    /// Validates the configuration, returning a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_transactions == 0 {
            return Err("num_transactions must be > 0".into());
        }
        if self.domain_size == 0 {
            return Err("domain_size must be > 0".into());
        }
        if self.avg_transaction_len <= 0.0 {
            return Err("avg_transaction_len must be > 0".into());
        }
        if self.num_patterns == 0 {
            return Err("num_patterns must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.correlation) {
            return Err("correlation must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.corruption) {
            return Err("corruption must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// A potentially frequent pattern with its selection weight and corruption.
#[derive(Debug, Clone)]
struct Pattern {
    items: Vec<TermId>,
    weight: f64,
    corruption: f64,
}

/// The Quest-style generator.
#[derive(Debug)]
pub struct QuestGenerator {
    config: QuestConfig,
    patterns: Vec<Pattern>,
    rng: StdRng,
    len_sampler: PoissonSampler,
}

impl QuestGenerator {
    /// Builds a generator (creates the pattern pool).
    ///
    /// # Panics
    /// Panics if the configuration is invalid; call [`QuestConfig::validate`]
    /// first if the configuration is user-supplied.
    pub fn new(config: QuestConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid Quest configuration: {e}"));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let item_dist = ZipfSampler::new(config.domain_size, config.item_skew);
        let pattern_len = PoissonSampler::new(config.avg_pattern_len);
        let mut patterns: Vec<Pattern> = Vec::with_capacity(config.num_patterns);
        let mut prev_items: Vec<TermId> = Vec::new();
        for _ in 0..config.num_patterns {
            let len = pattern_len.sample_clamped(&mut rng, 1, (config.domain_size as u64).max(1))
                as usize;
            let mut items: Vec<TermId> = Vec::with_capacity(len);
            // Copy a `correlation` fraction from the previous pattern.
            if !prev_items.is_empty() {
                for &it in &prev_items {
                    if items.len() >= len {
                        break;
                    }
                    if rng.gen::<f64>() < self_correlation(config.correlation) {
                        items.push(it);
                    }
                }
            }
            while items.len() < len {
                let item = TermId::from(item_dist.sample(&mut rng));
                if !items.contains(&item) {
                    items.push(item);
                }
            }
            // Exponentially distributed weight.
            let weight = -(rng.gen::<f64>().max(1e-12)).ln();
            // Corruption level: clipped normal around the configured mean.
            let corruption = (config.corruption + 0.1 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);
            prev_items = items.clone();
            patterns.push(Pattern {
                items,
                weight,
                corruption,
            });
        }
        let len_sampler = PoissonSampler::new(config.avg_transaction_len);
        QuestGenerator {
            config,
            patterns,
            rng,
            len_sampler,
        }
    }

    /// Generates the full dataset.
    pub fn generate(&mut self) -> Dataset {
        let weights: Vec<f64> = self.patterns.iter().map(|p| p.weight).collect();
        let mut records = Vec::with_capacity(self.config.num_transactions);
        let max_len = self.config.domain_size.max(1) as u64;
        while records.len() < self.config.num_transactions {
            let target_len = self.len_sampler.sample_clamped(&mut self.rng, 1, max_len) as usize;
            let mut items: Vec<TermId> = Vec::with_capacity(target_len + 4);
            let mut guard = 0;
            while items.len() < target_len && guard < 10 * target_len + 20 {
                guard += 1;
                let p_idx = sample_weighted(&mut self.rng, &weights);
                let pattern = &self.patterns[p_idx];
                // Corrupt the pattern: drop each item with probability `corruption`.
                let kept: Vec<TermId> = pattern
                    .items
                    .iter()
                    .copied()
                    .filter(|_| self.rng.gen::<f64>() >= pattern.corruption)
                    .collect();
                if kept.is_empty() {
                    continue;
                }
                // Quest: if the pattern does not fit, keep it anyway half the time.
                if items.len() + kept.len() > target_len
                    && self.rng.gen::<bool>()
                    && !items.is_empty()
                {
                    continue;
                }
                for it in kept {
                    if !items.contains(&it) {
                        items.push(it);
                    }
                }
            }
            if items.is_empty() {
                // Guarantee non-empty records (the anonymization model
                // requires valid, non-empty original records).
                let fallback = TermId::from(self.rng.gen_range(0..self.config.domain_size));
                items.push(fallback);
            }
            records.push(Record::from_ids(items));
        }
        Dataset::from_records(records)
    }

    /// Convenience: build + generate in one call.
    pub fn generate_with(config: QuestConfig) -> Dataset {
        QuestGenerator::new(config).generate()
    }

    /// The configuration used by this generator.
    pub fn config(&self) -> &QuestConfig {
        &self.config
    }
}

#[inline]
fn self_correlation(correlation: f64) -> f64 {
    correlation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_records() {
        let cfg = QuestConfig {
            num_transactions: 500,
            domain_size: 200,
            ..QuestConfig::default()
        };
        let d = QuestGenerator::generate_with(cfg);
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn all_terms_are_within_domain_and_records_non_empty() {
        let cfg = QuestConfig {
            num_transactions: 300,
            domain_size: 100,
            ..QuestConfig::default()
        };
        let d = QuestGenerator::generate_with(cfg);
        for r in d.iter() {
            assert!(!r.is_empty());
            assert!(r.iter().all(|t| t.index() < 100));
        }
    }

    #[test]
    fn average_record_length_tracks_configuration() {
        let cfg = QuestConfig {
            num_transactions: 3_000,
            domain_size: 1_000,
            avg_transaction_len: 10.0,
            ..QuestConfig::default()
        };
        let d = QuestGenerator::generate_with(cfg);
        let avg = d.avg_record_len();
        assert!(
            (5.0..=14.0).contains(&avg),
            "average record length {avg} too far from configured 10"
        );
    }

    #[test]
    fn same_seed_is_deterministic() {
        let cfg = QuestConfig {
            num_transactions: 200,
            domain_size: 150,
            seed: 99,
            ..QuestConfig::default()
        };
        let a = QuestGenerator::generate_with(cfg.clone());
        let b = QuestGenerator::generate_with(cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let base = QuestConfig {
            num_transactions: 200,
            domain_size: 150,
            ..QuestConfig::default()
        };
        let a = QuestGenerator::generate_with(QuestConfig {
            seed: 1,
            ..base.clone()
        });
        let b = QuestGenerator::generate_with(QuestConfig { seed: 2, ..base });
        assert_ne!(a, b);
    }

    #[test]
    fn support_distribution_is_skewed() {
        let cfg = QuestConfig {
            num_transactions: 2_000,
            domain_size: 500,
            ..QuestConfig::default()
        };
        let d = QuestGenerator::generate_with(cfg);
        let supports = d.supports();
        let ordered = supports.terms_by_descending_support();
        assert!(!ordered.is_empty());
        let top = supports.support(ordered[0]);
        let median = supports.support(ordered[ordered.len() / 2]);
        assert!(
            top >= 4 * median.max(1),
            "expected a skewed distribution: top={top} median={median}"
        );
    }

    #[test]
    fn paper_default_matches_published_parameters() {
        let cfg = QuestConfig::paper_default(20);
        assert_eq!(cfg.num_transactions, 50_000);
        assert_eq!(cfg.domain_size, 5_000);
        assert_eq!(cfg.avg_transaction_len, 10.0);
        assert!(QuestConfig::paper_default(1).num_transactions == 1_000_000);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(QuestConfig {
            num_transactions: 0,
            ..QuestConfig::default()
        }
        .validate()
        .is_err());
        assert!(QuestConfig {
            domain_size: 0,
            ..QuestConfig::default()
        }
        .validate()
        .is_err());
        assert!(QuestConfig {
            corruption: 1.5,
            ..QuestConfig::default()
        }
        .validate()
        .is_err());
        assert!(QuestConfig {
            correlation: -0.1,
            ..QuestConfig::default()
        }
        .validate()
        .is_err());
        assert!(QuestConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid Quest configuration")]
    fn constructor_panics_on_invalid_config() {
        let _ = QuestGenerator::new(QuestConfig {
            num_patterns: 0,
            ..QuestConfig::default()
        });
    }
}
