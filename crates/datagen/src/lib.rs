//! # datagen — synthetic workload generation
//!
//! The paper's evaluation (Section 7) uses three real datasets (POS, WV1,
//! WV2 — Zheng et al., KDD 2001) and synthetic datasets produced with IBM's
//! Quest market-basket generator.  Neither the real datasets nor the original
//! Quest binary are redistributable, so this crate provides:
//!
//! * [`quest`] — a re-implementation of the published Quest generative model
//!   (potentially frequent patterns, exponentially weighted pattern picking,
//!   Poisson transaction lengths, pattern corruption),
//! * [`zipf`] — Zipf / truncated-Poisson samplers used by both generators,
//! * [`profiles`] — statistical simulators of POS / WV1 / WV2 calibrated to
//!   the numbers published in Figure 6 of the paper (|D|, |T|, max and
//!   average record size) with a Zipf-like term-frequency distribution,
//! * [`scenarios`] — the named workload matrix of the scenario evaluation
//!   harness (dense market-basket vs. sparse query-log vs. a WV1 twin vs. a
//!   unit-Zipf middle ground), shared by `bench_scenarios`, the metamorphic
//!   datagen tests and CI smoke.
//!
//! All generators are deterministic given a seed, so every experiment in the
//! reproduction is repeatable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profiles;
pub mod quest;
pub mod scenarios;
pub mod zipf;

pub use profiles::{DatasetProfile, RealDataset};
pub use quest::{QuestConfig, QuestGenerator};
pub use scenarios::Scenario;
pub use zipf::{PoissonSampler, ZipfSampler};
