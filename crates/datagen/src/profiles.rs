//! Statistical simulators of the paper's real datasets (POS, WV1, WV2).
//!
//! The originals (Zheng, Kohavi, Mason — KDD 2001) are not redistributable,
//! so the reproduction generates datasets that match the published statistics
//! of Figure 6:
//!
//! | dataset | \|D\|   | \|T\| | max rec. | avg rec. |
//! |---------|---------|-------|----------|----------|
//! | POS     | 515,597 | 1,657 | 164      | 6.5      |
//! | WV1     |  59,602 |   497 | 267      | 2.5      |
//! | WV2     |  77,512 | 3,340 | 161      | 5.0      |
//!
//! Record lengths follow a truncated geometric-like distribution (most
//! baskets/click sessions are short, a few are very long — capped at the
//! published maximum) and term frequencies follow a Zipf distribution, which
//! matches the heavy-tailed supports reported for retail and click-stream
//! logs.  These are the only characteristics the paper's metrics are
//! sensitive to (supports, record length, dataset/domain size), so the
//! substitution preserves the qualitative behaviour; see DESIGN.md §3.

use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use transact::{Dataset, DatasetStats, Record, TermId};

/// The three real datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RealDataset {
    /// POS — transaction log of an electronics retailer.
    Pos,
    /// WV1 — click-stream data of an e-commerce web site.
    Wv1,
    /// WV2 — click-stream data of a second e-commerce web site.
    Wv2,
}

impl RealDataset {
    /// All three datasets in the order the paper lists them.
    pub const ALL: [RealDataset; 3] = [RealDataset::Pos, RealDataset::Wv1, RealDataset::Wv2];

    /// The display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            RealDataset::Pos => "POS",
            RealDataset::Wv1 => "WV1",
            RealDataset::Wv2 => "WV2",
        }
    }

    /// The statistical profile of Figure 6.
    pub fn profile(&self) -> DatasetProfile {
        match self {
            RealDataset::Pos => DatasetProfile {
                name: "POS",
                num_records: 515_597,
                domain_size: 1_657,
                max_record_len: 164,
                avg_record_len: 6.5,
                zipf_exponent: 1.0,
                seed: 0x505,
            },
            RealDataset::Wv1 => DatasetProfile {
                name: "WV1",
                num_records: 59_602,
                domain_size: 497,
                max_record_len: 267,
                avg_record_len: 2.5,
                zipf_exponent: 0.95,
                seed: 0x571,
            },
            RealDataset::Wv2 => DatasetProfile {
                name: "WV2",
                num_records: 77_512,
                domain_size: 3_340,
                max_record_len: 161,
                avg_record_len: 5.0,
                zipf_exponent: 1.05,
                seed: 0x572,
            },
        }
    }

    /// Generates the dataset at `1/scale` of the published record count
    /// (domain size is kept intact so the support distribution scales the way
    /// a sampled real dataset would).
    pub fn generate_scaled(&self, scale: usize) -> Dataset {
        self.profile().generate_scaled(scale)
    }
}

/// A statistical profile of a transactional dataset (the Figure 6 columns
/// plus the Zipf exponent and seed used to synthesize it).
///
/// Serializes but does not implement `Deserialize`: the `name` field is a
/// `&'static str` referring to the compiled-in profile table, which cannot
/// be reconstructed from owned JSON data.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetProfile {
    /// Display name.
    pub name: &'static str,
    /// Number of records `|D|`.
    pub num_records: usize,
    /// Domain size `|T|`.
    pub domain_size: usize,
    /// Maximum record length.
    pub max_record_len: usize,
    /// Average record length.
    pub avg_record_len: f64,
    /// Zipf exponent of the term-frequency distribution.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetProfile {
    /// Generates a dataset matching the profile.
    pub fn generate(&self) -> Dataset {
        self.generate_scaled(1)
    }

    /// Generates a dataset with `num_records / scale` records.
    pub fn generate_scaled(&self, scale: usize) -> Dataset {
        let scale = scale.max(1);
        let n = (self.num_records / scale).max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = ZipfSampler::new(self.domain_size, self.zipf_exponent);
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let len = self.sample_record_len(&mut rng);
            let mut rec = Record::new();
            let mut guard = 0usize;
            while rec.len() < len && guard < 20 * len + 50 {
                guard += 1;
                rec.insert(TermId::from(zipf.sample(&mut rng)));
            }
            if rec.is_empty() {
                rec.insert(TermId::from(zipf.sample(&mut rng)));
            }
            records.push(rec);
        }
        Dataset::from_records(records)
    }

    /// Samples a record length with mean ≈ `avg_record_len`, minimum 1 and
    /// maximum `max_record_len`, using a geometric body plus a small
    /// heavy-tail component (real click-streams have a few very long
    /// sessions, which is what produces the published max of 164–267).
    fn sample_record_len<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        const TAIL_PROB: f64 = 0.005;
        let mean = self.avg_record_len.max(1.0);
        let hi = self.max_record_len.max(2);
        let lo = ((2.0 * mean).ceil() as usize).clamp(1, hi);
        // A small long-tail component reaches the published maximum length.
        if rng.gen::<f64>() < TAIL_PROB {
            return rng.gen_range(lo..=hi);
        }
        // Geometric body, with its mean lowered so the overall mean
        // (body + tail) stays close to the published average.
        let tail_mean = (lo + hi) as f64 / 2.0;
        let body_mean = ((mean - TAIL_PROB * tail_mean) / (1.0 - TAIL_PROB)).max(1.0);
        let p = 1.0 / body_mean;
        let mut len = 1usize;
        while rng.gen::<f64>() > p && len < self.max_record_len {
            len += 1;
        }
        len
    }

    /// Checks how well a generated dataset matches the profile; returns the
    /// computed statistics for reporting.
    pub fn verify(&self, dataset: &Dataset) -> DatasetStats {
        DatasetStats::compute(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_match_figure6_constants() {
        let pos = RealDataset::Pos.profile();
        assert_eq!(pos.num_records, 515_597);
        assert_eq!(pos.domain_size, 1_657);
        let wv1 = RealDataset::Wv1.profile();
        assert_eq!(wv1.num_records, 59_602);
        assert_eq!(wv1.domain_size, 497);
        let wv2 = RealDataset::Wv2.profile();
        assert_eq!(wv2.num_records, 77_512);
        assert_eq!(wv2.domain_size, 3_340);
    }

    #[test]
    fn scaled_generation_has_requested_size() {
        let d = RealDataset::Wv1.generate_scaled(50);
        assert_eq!(d.len(), 59_602 / 50);
    }

    #[test]
    fn generated_records_respect_length_bounds() {
        let profile = RealDataset::Pos.profile();
        let d = profile.generate_scaled(200);
        assert!(d.iter().all(|r| !r.is_empty()));
        assert!(d.max_record_len() <= profile.max_record_len);
    }

    #[test]
    fn generated_average_length_is_near_profile() {
        let profile = RealDataset::Pos.profile();
        let d = profile.generate_scaled(100);
        let avg = d.avg_record_len();
        assert!(
            (avg - profile.avg_record_len).abs() / profile.avg_record_len < 0.35,
            "avg {avg} too far from profile {}",
            profile.avg_record_len
        );
    }

    #[test]
    fn wv1_short_records_dominate() {
        let d = RealDataset::Wv1.generate_scaled(50);
        let avg = d.avg_record_len();
        assert!(
            avg < 4.0,
            "WV1 records should be short on average, got {avg}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RealDataset::Wv2.generate_scaled(100);
        let b = RealDataset::Wv2.generate_scaled(100);
        assert_eq!(a, b);
    }

    #[test]
    fn domain_is_mostly_covered_at_small_scale() {
        let profile = RealDataset::Wv1.profile();
        let d = profile.generate_scaled(20); // ~3000 records over 497 terms
        let covered = d.domain_size();
        assert!(
            covered as f64 > 0.5 * profile.domain_size as f64,
            "only {covered} of {} terms covered",
            profile.domain_size
        );
    }

    #[test]
    fn names_and_all_list() {
        assert_eq!(RealDataset::ALL.len(), 3);
        assert_eq!(RealDataset::Pos.name(), "POS");
        assert_eq!(RealDataset::Wv1.name(), "WV1");
        assert_eq!(RealDataset::Wv2.name(), "WV2");
    }

    #[test]
    fn verify_reports_stats() {
        let profile = RealDataset::Wv1.profile();
        let d = profile.generate_scaled(100);
        let stats = profile.verify(&d);
        assert_eq!(stats.num_records, d.len());
    }
}
