//! Distribution samplers used by the synthetic generators.
//!
//! Only `rand` is available offline, so the Zipf and Poisson samplers are
//! implemented here directly (inverse-CDF table for Zipf, Knuth's product
//! method with a normal fallback for Poisson).

use rand::Rng;

/// Zipf(α) sampler over ranks `1..=n` using a precomputed inverse CDF.
///
/// Term-frequency distributions of query logs and retail baskets are heavily
/// skewed; a Zipf exponent around 0.8–1.1 matches the shape of the POS / WV1 /
/// WV2 support distributions that drive the paper's information-loss results.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `alpha` (> 0).
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is not finite/positive.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs a non-empty domain");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a 0-based rank (0 is the most probable).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of a 0-based rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Poisson(λ) sampler.
///
/// Quest draws both transaction lengths and pattern lengths from Poisson
/// distributions around the configured averages.
#[derive(Debug, Clone, Copy)]
pub struct PoissonSampler {
    lambda: f64,
}

impl PoissonSampler {
    /// Creates a sampler with mean `lambda` (> 0).
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        PoissonSampler { lambda }
    }

    /// The mean of the distribution.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Samples a value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's product method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation for large λ.
            let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = self.lambda + z * self.lambda.sqrt();
            v.max(0.0).round() as u64
        }
    }

    /// Samples a value clamped to `min..=max`.
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, min: u64, max: u64) -> u64 {
        self.sample(rng).clamp(min, max)
    }
}

/// Samples an index from explicit (unnormalized, non-negative) weights.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zipf_rank_zero_is_most_probable() {
        let z = ZipfSampler::new(50, 0.9);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn zipf_samples_stay_in_range_and_skew_low() {
        let z = ZipfSampler::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut low = 0usize;
        for _ in 0..2000 {
            let r = z.sample(&mut rng);
            assert!(r < 20);
            if r < 5 {
                low += 1;
            }
        }
        // With α=1 over 20 ranks, the top-5 ranks carry ~63% of the mass.
        assert!(low > 1000, "low-rank mass too small: {low}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_domain() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn poisson_mean_is_close_to_lambda_small() {
        let p = PoissonSampler::new(5.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_mean_is_close_to_lambda_large() {
        let p = PoissonSampler::new(80.0);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 80.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_clamped_respects_bounds() {
        let p = PoissonSampler::new(3.0);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..500 {
            let v = p.sample_clamped(&mut rng, 1, 6);
            assert!((1..=6).contains(&v));
        }
    }

    #[test]
    fn weighted_sampling_prefers_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [0.0, 10.0, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 900);
    }

    #[test]
    fn weighted_sampling_handles_all_zero_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [0.0, 0.0];
        let idx = sample_weighted(&mut rng, &weights);
        assert!(idx < 2);
    }
}
