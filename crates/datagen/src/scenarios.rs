//! Scenario workloads for the evaluation harness.
//!
//! The paper's evaluation (and `BENCH_core`) exercises essentially one
//! workload shape — Quest market-basket data.  Real transaction logs differ
//! along two axes that dominate disassociation behaviour:
//!
//! * **density** — dense market baskets (many terms per record over a small
//!   domain, so supports are high and most terms clear `k`) vs. sparse
//!   query logs (few terms per record over a huge domain, so most terms are
//!   rare and fall into term chunks);
//! * **skew** — how steep the Zipf term-frequency tail is, which decides
//!   how much of the domain the HORPART split terms can discriminate.
//!
//! [`Scenario`] packages one named [`DatasetProfile`] per corner of that
//! space (plus a WV1 twin tying the harness back to the paper's Figure 6
//! statistics), so every consumer — `bench_scenarios`, the metamorphic
//! datagen tests, CI smoke — iterates the same matrix.

use crate::profiles::DatasetProfile;
use transact::Dataset;

/// A named synthetic workload of the evaluation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Dense market-basket data: long records over a small domain with a
    /// gentle Zipf tail — most terms are frequent, record chunks dominate.
    MarketBasket,
    /// Sparse query-log data: short records over a large domain with a
    /// steep Zipf tail — most terms are rare, term chunks dominate.
    QueryLog,
    /// A twin of the paper's WV1 click-stream (Figure 6 statistics) under
    /// a scenario-local seed, connecting the matrix to the paper's data.
    Wv1Twin,
    /// The middle of the density axis with unit Zipf exponent — the
    /// canonical heavy-tail shape, used to probe skew sensitivity.
    ZipfSkew,
}

impl Scenario {
    /// Every scenario, in evaluation-matrix order.
    pub const ALL: [Scenario; 4] = [
        Scenario::MarketBasket,
        Scenario::QueryLog,
        Scenario::Wv1Twin,
        Scenario::ZipfSkew,
    ];

    /// Stable display name (used as the series key in `BENCH_scenarios`).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::MarketBasket => "market-basket",
            Scenario::QueryLog => "query-log",
            Scenario::Wv1Twin => "wv1-twin",
            Scenario::ZipfSkew => "zipf-skew",
        }
    }

    /// The statistical profile generating this scenario's data.
    pub fn profile(&self) -> DatasetProfile {
        match self {
            Scenario::MarketBasket => DatasetProfile {
                name: "market-basket",
                num_records: 50_000,
                domain_size: 600,
                max_record_len: 60,
                avg_record_len: 12.0,
                zipf_exponent: 0.75,
                seed: 0xBA5E,
            },
            Scenario::QueryLog => DatasetProfile {
                name: "query-log",
                num_records: 50_000,
                domain_size: 8_000,
                max_record_len: 40,
                avg_record_len: 3.0,
                zipf_exponent: 1.1,
                seed: 0x0106,
            },
            Scenario::Wv1Twin => DatasetProfile {
                name: "wv1-twin",
                num_records: 59_602,
                domain_size: 497,
                max_record_len: 267,
                avg_record_len: 2.5,
                zipf_exponent: 0.95,
                seed: 0x571F,
            },
            Scenario::ZipfSkew => DatasetProfile {
                name: "zipf-skew",
                num_records: 50_000,
                domain_size: 2_000,
                max_record_len: 80,
                avg_record_len: 6.0,
                zipf_exponent: 1.0,
                seed: 0x21FF,
            },
        }
    }

    /// Generates the scenario's dataset at `1/scale` of its full record
    /// count (domain size kept intact, like the real-dataset profiles).
    pub fn generate_scaled(&self, scale: usize) -> Dataset {
        self.profile().generate_scaled(scale)
    }
}

/// Fraction of all term occurrences carried by the most frequent
/// `fraction` of the *covered* domain — a scale-free measure of the
/// term-frequency tail.  A steep Zipf exponent concentrates occurrences in
/// few terms (high share); a flat one spreads them (share approaches
/// `fraction`).
pub fn top_share(dataset: &Dataset, fraction: f64) -> f64 {
    let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for record in dataset.iter() {
        for term in record.iter() {
            *counts.entry(term.raw()).or_insert(0) += 1;
        }
    }
    let total: u64 = counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.into_values().collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let take = ((fraction.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    let top: u64 = sorted.iter().take(take).sum();
    top as f64 / total as f64
}

/// Average record length divided by covered domain size — the density of
/// the workload (market baskets are dense, query logs sparse).
pub fn density(dataset: &Dataset) -> f64 {
    let domain = dataset.domain_size();
    if domain == 0 {
        0.0
    } else {
        dataset.avg_record_len() / domain as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let names: std::collections::BTreeSet<&str> =
            Scenario::ALL.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), Scenario::ALL.len());
        assert!(names.contains("market-basket"));
        assert!(names.contains("query-log"));
        assert!(names.contains("wv1-twin"));
        assert!(names.contains("zipf-skew"));
    }

    #[test]
    fn wv1_twin_matches_figure6_statistics() {
        let profile = Scenario::Wv1Twin.profile();
        let wv1 = crate::RealDataset::Wv1.profile();
        assert_eq!(profile.num_records, wv1.num_records);
        assert_eq!(profile.domain_size, wv1.domain_size);
        assert_eq!(profile.max_record_len, wv1.max_record_len);
        assert_eq!(profile.avg_record_len, wv1.avg_record_len);
        assert_eq!(profile.zipf_exponent, wv1.zipf_exponent);
        // ...under its own seed: the twin is not the same sampled dataset.
        assert_ne!(profile.seed, wv1.seed);
    }

    #[test]
    fn market_basket_is_denser_than_query_log() {
        let basket = Scenario::MarketBasket.generate_scaled(25);
        let log = Scenario::QueryLog.generate_scaled(25);
        assert!(
            density(&basket) > 4.0 * density(&log),
            "market-basket density {} should dwarf query-log density {}",
            density(&basket),
            density(&log)
        );
    }

    #[test]
    fn steeper_zipf_concentrates_the_tail() {
        let steep = Scenario::QueryLog.generate_scaled(25);
        let flat = Scenario::MarketBasket.generate_scaled(25);
        let steep_share = top_share(&steep, 0.1);
        let flat_share = top_share(&flat, 0.1);
        assert!(
            steep_share > flat_share,
            "query-log (zipf 1.1) top-10% share {steep_share} should exceed \
             market-basket (zipf 0.75) share {flat_share}"
        );
    }
}
