//! # fimi — frequent itemset mining
//!
//! The paper's information-loss metrics (Section 6) compare the **top-K
//! frequent itemsets** of the original and the anonymized datasets (the
//! `tKd` and `tKd-ML2` metrics, K = 1000 in the evaluation).  This crate
//! provides the mining machinery:
//!
//! * [`apriori`] — the classic level-wise Apriori miner (reference
//!   implementation, easy to audit),
//! * [`fpgrowth`] — an FP-growth miner used for the large experiment runs
//!   (same results, much faster on long transactions),
//! * [`topk`] — exact top-K frequent itemset extraction built on either
//!   miner.
//!
//! The miners are item-type agnostic: transactions are `Vec<u32>` item lists
//! so that both original terms ([`transact::TermId`]) and generalized
//! taxonomy nodes (`hierarchy::NodeId`, needed by tKd-ML2) can be mined with
//! the same code.  Use [`records_to_transactions`] to adapt a
//! [`transact::Record`] slice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod fpgrowth;
pub mod topk;

pub use apriori::mine_frequent_apriori;
pub use fpgrowth::mine_frequent_fpgrowth;
pub use topk::{top_k_frequent, MinerKind, TopKConfig};

use transact::Record;

/// A mined itemset with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// Sorted item ids.
    pub items: Vec<u32>,
    /// Number of transactions containing all the items.
    pub support: u64,
}

impl FrequentItemset {
    /// Creates a frequent itemset (sorts the items).
    pub fn new(mut items: Vec<u32>, support: u64) -> Self {
        items.sort_unstable();
        items.dedup();
        FrequentItemset { items, support }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the itemset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Converts records into plain `u32` transactions (sorted item lists).
pub fn records_to_transactions(records: &[Record]) -> Vec<Vec<u32>> {
    records
        .iter()
        .map(|r| r.iter().map(|t| t.raw()).collect())
        .collect()
}

/// Sorts mined itemsets by descending support, breaking ties by ascending
/// length and lexicographic item order so results are deterministic across
/// miners and runs.
pub fn sort_canonical(itemsets: &mut [FrequentItemset]) {
    itemsets.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.items.len().cmp(&b.items.len()))
            .then_with(|| a.items.cmp(&b.items))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use transact::TermId;

    #[test]
    fn frequent_itemset_canonicalizes_items() {
        let fi = FrequentItemset::new(vec![3, 1, 3], 7);
        assert_eq!(fi.items, vec![1, 3]);
        assert_eq!(fi.support, 7);
        assert_eq!(fi.len(), 2);
    }

    #[test]
    fn records_to_transactions_preserves_items() {
        let recs = vec![Record::from_ids([TermId::new(2), TermId::new(0)])];
        let tx = records_to_transactions(&recs);
        assert_eq!(tx, vec![vec![0, 2]]);
    }

    #[test]
    fn canonical_sort_orders_by_support_then_length() {
        let mut v = vec![
            FrequentItemset::new(vec![1, 2], 5),
            FrequentItemset::new(vec![3], 9),
            FrequentItemset::new(vec![1], 5),
        ];
        sort_canonical(&mut v);
        assert_eq!(v[0].items, vec![3]);
        assert_eq!(v[1].items, vec![1]);
        assert_eq!(v[2].items, vec![1, 2]);
    }
}
