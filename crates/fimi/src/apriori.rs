//! Level-wise Apriori frequent itemset mining.
//!
//! Kept deliberately simple and allocation-friendly: it is the *reference*
//! miner that the FP-growth implementation is validated against, and it is
//! fast enough for the chunk-level mining the anonymity checks perform.

use crate::FrequentItemset;
use std::collections::HashMap;

/// Mines all itemsets with support ≥ `min_support` and size ≤ `max_len`.
///
/// * `transactions` — item lists; items inside one transaction are treated
///   with set semantics (duplicates ignored).
/// * `min_support` — absolute support threshold (number of transactions).
/// * `max_len` — maximum itemset size to mine (0 means "no itemsets").
pub fn mine_frequent_apriori(
    transactions: &[Vec<u32>],
    min_support: u64,
    max_len: usize,
) -> Vec<FrequentItemset> {
    if max_len == 0 || transactions.is_empty() || min_support == 0 {
        // min_support 0 would enumerate the powerset; treat it as 1.
        if max_len == 0 || transactions.is_empty() {
            return Vec::new();
        }
    }
    let min_support = min_support.max(1);

    // Canonical transactions: sorted, deduplicated.
    let canon: Vec<Vec<u32>> = transactions
        .iter()
        .map(|t| {
            let mut v = t.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();

    let mut results: Vec<FrequentItemset> = Vec::new();

    // Level 1: singleton counts.
    let mut singleton_counts: HashMap<u32, u64> = HashMap::new();
    for t in &canon {
        for &item in t {
            *singleton_counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut frequent_prev: Vec<Vec<u32>> = Vec::new();
    let mut level1: Vec<(u32, u64)> = singleton_counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .collect();
    level1.sort_unstable();
    for (item, count) in level1 {
        results.push(FrequentItemset {
            items: vec![item],
            support: count,
        });
        frequent_prev.push(vec![item]);
    }

    // Levels 2..=max_len.
    let mut level = 2usize;
    while level <= max_len && !frequent_prev.is_empty() {
        let candidates = generate_candidates(&frequent_prev);
        if candidates.is_empty() {
            break;
        }
        let mut counts: HashMap<Vec<u32>, u64> = HashMap::with_capacity(candidates.len());
        for c in &candidates {
            counts.insert(c.clone(), 0);
        }
        for t in &canon {
            if t.len() < level {
                continue;
            }
            for c in &candidates {
                if is_subset_sorted(c, t) {
                    if let Some(slot) = counts.get_mut(c) {
                        *slot += 1;
                    }
                }
            }
        }
        let mut next: Vec<Vec<u32>> = Vec::new();
        let mut level_results: Vec<FrequentItemset> = Vec::new();
        for (items, count) in counts {
            if count >= min_support {
                next.push(items.clone());
                level_results.push(FrequentItemset {
                    items,
                    support: count,
                });
            }
        }
        next.sort_unstable();
        level_results.sort_by(|a, b| a.items.cmp(&b.items));
        results.extend(level_results);
        frequent_prev = next;
        level += 1;
    }
    results
}

/// Classic Apriori candidate generation: join frequent (k-1)-itemsets that
/// share their first k-2 items, then prune candidates with an infrequent
/// (k-1)-subset.
fn generate_candidates(frequent_prev: &[Vec<u32>]) -> Vec<Vec<u32>> {
    use std::collections::HashSet;
    let prev_set: HashSet<&[u32]> = frequent_prev.iter().map(|v| v.as_slice()).collect();
    let mut candidates = Vec::new();
    for i in 0..frequent_prev.len() {
        for j in (i + 1)..frequent_prev.len() {
            let a = &frequent_prev[i];
            let b = &frequent_prev[j];
            let k = a.len();
            if k == 0 || a[..k - 1] != b[..k - 1] {
                continue;
            }
            let (last_a, last_b) = (a[k - 1], b[k - 1]);
            let mut cand = a.clone();
            if last_a < last_b {
                cand.push(last_b);
            } else {
                continue; // the symmetric pair will be generated from (j, i) ordering
            }
            // Prune: every (k)-subset obtained by dropping one element must be frequent.
            let mut all_subsets_frequent = true;
            for drop in 0..cand.len() {
                let mut sub = cand.clone();
                sub.remove(drop);
                if !prev_set.contains(sub.as_slice()) {
                    all_subsets_frequent = false;
                    break;
                }
            }
            if all_subsets_frequent {
                candidates.push(cand);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Whether sorted `needle` is a subset of sorted `haystack`.
fn is_subset_sorted(needle: &[u32], haystack: &[u32]) -> bool {
    let mut hi = 0usize;
    'outer: for &n in needle {
        while hi < haystack.len() {
            match haystack[hi].cmp(&n) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Brute-force miner used as an oracle in tests (exponential; small inputs
/// only).
#[doc(hidden)]
pub fn mine_frequent_bruteforce(
    transactions: &[Vec<u32>],
    min_support: u64,
    max_len: usize,
) -> Vec<FrequentItemset> {
    use std::collections::{HashMap, HashSet};
    let min_support = min_support.max(1);
    let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
    for t in transactions {
        let items: Vec<u32> = {
            let set: HashSet<u32> = t.iter().copied().collect();
            let mut v: Vec<u32> = set.into_iter().collect();
            v.sort_unstable();
            v
        };
        let n = items.len();
        // Enumerate all non-empty subsets up to max_len.
        fn rec(
            items: &[u32],
            start: usize,
            max_len: usize,
            cur: &mut Vec<u32>,
            counts: &mut HashMap<Vec<u32>, u64>,
        ) {
            for i in start..items.len() {
                cur.push(items[i]);
                *counts.entry(cur.clone()).or_insert(0) += 1;
                if cur.len() < max_len {
                    rec(items, i + 1, max_len, cur, counts);
                }
                cur.pop();
            }
        }
        if n > 0 && max_len > 0 {
            rec(&items, 0, max_len, &mut Vec::new(), &mut counts);
        }
    }
    let mut out: Vec<FrequentItemset> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .map(|(items, support)| FrequentItemset { items, support })
        .collect();
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(data: &[&[u32]]) -> Vec<Vec<u32>> {
        data.iter().map(|t| t.to_vec()).collect()
    }

    fn normalized(mut v: Vec<FrequentItemset>) -> Vec<(Vec<u32>, u64)> {
        v.sort_by(|a, b| a.items.cmp(&b.items));
        v.into_iter().map(|f| (f.items, f.support)).collect()
    }

    #[test]
    fn textbook_example() {
        // The classic {bread, milk, beer} style example.
        let t = tx(&[&[1, 2, 3], &[1, 2], &[1, 3], &[2, 3], &[1, 2, 3, 4]]);
        let result = mine_frequent_apriori(&t, 3, 3);
        let map: std::collections::HashMap<Vec<u32>, u64> =
            result.into_iter().map(|f| (f.items, f.support)).collect();
        assert_eq!(map[&vec![1]], 4);
        assert_eq!(map[&vec![2]], 4);
        assert_eq!(map[&vec![3]], 4);
        assert_eq!(map[&vec![1, 2]], 3);
        assert_eq!(map[&vec![1, 3]], 3);
        assert_eq!(map[&vec![2, 3]], 3);
        assert!(!map.contains_key(&vec![4]));
        assert!(!map.contains_key(&vec![1, 2, 3]), "support 2 < 3");
    }

    #[test]
    fn max_len_limits_itemset_size() {
        let t = tx(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3]]);
        let result = mine_frequent_apriori(&t, 2, 2);
        assert!(result.iter().all(|f| f.len() <= 2));
        let result3 = mine_frequent_apriori(&t, 2, 3);
        assert!(result3.iter().any(|f| f.len() == 3));
    }

    #[test]
    fn duplicates_within_a_transaction_do_not_inflate_support() {
        let t = tx(&[&[1, 1, 2], &[1, 2]]);
        let result = mine_frequent_apriori(&t, 2, 2);
        let map: std::collections::HashMap<Vec<u32>, u64> =
            result.into_iter().map(|f| (f.items, f.support)).collect();
        assert_eq!(map[&vec![1]], 2);
        assert_eq!(map[&vec![1, 2]], 2);
    }

    #[test]
    fn empty_inputs_yield_nothing() {
        assert!(mine_frequent_apriori(&[], 1, 3).is_empty());
        assert!(mine_frequent_apriori(&tx(&[&[1]]), 1, 0).is_empty());
        assert!(mine_frequent_apriori(&tx(&[&[]]), 1, 3).is_empty());
    }

    #[test]
    fn agrees_with_bruteforce_on_small_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for case in 0..20 {
            let n_tx = rng.gen_range(1..20);
            let t: Vec<Vec<u32>> = (0..n_tx)
                .map(|_| {
                    let len = rng.gen_range(0..6);
                    (0..len).map(|_| rng.gen_range(0..8)).collect()
                })
                .collect();
            let min_support = rng.gen_range(1..4);
            let apriori = normalized(mine_frequent_apriori(&t, min_support, 3));
            let brute = normalized(mine_frequent_bruteforce(&t, min_support, 3));
            assert_eq!(
                apriori, brute,
                "case {case} min_support {min_support} tx {t:?}"
            );
        }
    }

    #[test]
    fn is_subset_sorted_edge_cases() {
        assert!(is_subset_sorted(&[], &[1, 2]));
        assert!(is_subset_sorted(&[2], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[4], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[1], &[]));
        assert!(is_subset_sorted(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[1, 4], &[1, 2, 3]));
    }

    #[test]
    fn candidate_generation_prunes_infrequent_subsets() {
        // {1,2} and {1,3} frequent but {2,3} not → {1,2,3} must be pruned.
        let prev = vec![vec![1, 2], vec![1, 3]];
        let cands = generate_candidates(&prev);
        assert!(cands.is_empty());
        // With {2,3} present the join survives.
        let prev = vec![vec![1, 2], vec![1, 3], vec![2, 3]];
        let cands = generate_candidates(&prev);
        assert_eq!(cands, vec![vec![1, 2, 3]]);
    }
}
