//! FP-growth frequent itemset mining.
//!
//! The tKd metric mines the top-1000 frequent itemsets of datasets with up to
//! half a million records; a level-wise Apriori pass over such data is slow
//! because every candidate is tested against every transaction.  FP-growth
//! compresses the transactions into a prefix tree (the FP-tree) once and then
//! mines recursively on conditional trees.  The implementation below follows
//! Han, Pei & Yin (SIGMOD 2000) with parent pointers stored as indices into a
//! node arena (no `Rc`/`RefCell` churn, no unsafe).

use crate::FrequentItemset;
use std::collections::HashMap;

/// A node of the FP-tree arena.
#[derive(Debug, Clone)]
struct Node {
    item: u32,
    count: u64,
    parent: usize,
    children: HashMap<u32, usize>,
}

/// An FP-tree with its header table.
#[derive(Debug)]
struct FpTree {
    nodes: Vec<Node>,
    /// item → indices of the nodes carrying that item.
    header: HashMap<u32, Vec<usize>>,
}

const ROOT: usize = 0;

impl FpTree {
    fn new() -> Self {
        FpTree {
            nodes: vec![Node {
                item: u32::MAX,
                count: 0,
                parent: ROOT,
                children: HashMap::new(),
            }],
            header: HashMap::new(),
        }
    }

    /// Inserts a transaction (items must already be filtered to frequent ones
    /// and sorted in descending frequency order) with multiplicity `count`.
    fn insert(&mut self, items: &[u32], count: u64) {
        let mut current = ROOT;
        for &item in items {
            let next = match self.nodes[current].children.get(&item) {
                Some(&idx) => {
                    self.nodes[idx].count += count;
                    idx
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        count,
                        parent: current,
                        children: HashMap::new(),
                    });
                    self.nodes[current].children.insert(item, idx);
                    self.header.entry(item).or_default().push(idx);
                    idx
                }
            };
            current = next;
        }
    }

    /// The prefix path of a node (excluding the node itself and the root),
    /// returned root-to-leaf order not needed — only membership matters, so
    /// leaf-to-root is fine.
    fn prefix_path(&self, mut idx: usize) -> Vec<u32> {
        let mut path = Vec::new();
        idx = self.nodes[idx].parent;
        while idx != ROOT {
            path.push(self.nodes[idx].item);
            idx = self.nodes[idx].parent;
        }
        path
    }
}

/// Mines all itemsets with support ≥ `min_support` and size ≤ `max_len`
/// using FP-growth.  Produces exactly the same result set as
/// [`crate::mine_frequent_apriori`].
pub fn mine_frequent_fpgrowth(
    transactions: &[Vec<u32>],
    min_support: u64,
    max_len: usize,
) -> Vec<FrequentItemset> {
    if transactions.is_empty() || max_len == 0 {
        return Vec::new();
    }
    let min_support = min_support.max(1);

    // Global item frequencies.
    let mut freq: HashMap<u32, u64> = HashMap::new();
    for t in transactions {
        let mut seen: Vec<u32> = t.clone();
        seen.sort_unstable();
        seen.dedup();
        for item in seen {
            *freq.entry(item).or_insert(0) += 1;
        }
    }
    let frequent_items: HashMap<u32, u64> = freq
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .collect();
    if frequent_items.is_empty() {
        return Vec::new();
    }

    // Build the initial FP-tree: each transaction filtered to frequent items
    // and ordered by descending global frequency (ties by ascending item id
    // for determinism).
    let order_key = |item: u32| (std::cmp::Reverse(frequent_items[&item]), item);
    let mut tree = FpTree::new();
    for t in transactions {
        let mut items: Vec<u32> = t
            .iter()
            .copied()
            .filter(|i| frequent_items.contains_key(i))
            .collect();
        items.sort_unstable();
        items.dedup();
        items.sort_by_key(|&i| order_key(i));
        if !items.is_empty() {
            tree.insert(&items, 1);
        }
    }

    let mut results = Vec::new();
    let mut suffix: Vec<u32> = Vec::new();
    mine_tree(&tree, min_support, max_len, &mut suffix, &mut results);
    // Canonical order: ascending item lists.
    for fi in &mut results {
        fi.items.sort_unstable();
    }
    results.sort_by(|a, b| a.items.cmp(&b.items));
    results
}

/// Recursively mines `tree`, emitting itemsets `item ∪ suffix`.
fn mine_tree(
    tree: &FpTree,
    min_support: u64,
    max_len: usize,
    suffix: &mut Vec<u32>,
    results: &mut Vec<FrequentItemset>,
) {
    if suffix.len() >= max_len {
        return;
    }
    // Item supports inside this (conditional) tree.
    let mut item_supports: Vec<(u32, u64)> = tree
        .header
        .iter()
        .map(|(&item, nodes)| (item, nodes.iter().map(|&n| tree.nodes[n].count).sum()))
        .filter(|&(_, s)| s >= min_support)
        .collect();
    // Mine the least frequent items first (standard FP-growth order); the
    // order does not change the result set, only the recursion shape.
    item_supports.sort_by_key(|&(item, s)| (s, item));

    for (item, support) in item_supports {
        let mut items = suffix.clone();
        items.push(item);
        results.push(FrequentItemset {
            items: items.clone(),
            support,
        });
        if suffix.len() + 1 >= max_len {
            continue;
        }
        // Build the conditional pattern base and the conditional tree.
        let mut conditional = FpTree::new();
        let mut any = false;
        if let Some(nodes) = tree.header.get(&item) {
            // Conditional item frequencies (needed to order the paths and to
            // filter items that cannot reach min_support in the conditional
            // tree).
            let mut cond_freq: HashMap<u32, u64> = HashMap::new();
            let mut paths: Vec<(Vec<u32>, u64)> = Vec::new();
            for &n in nodes {
                let count = tree.nodes[n].count;
                let path = tree.prefix_path(n);
                for &p in &path {
                    *cond_freq.entry(p).or_insert(0) += count;
                }
                if !path.is_empty() {
                    paths.push((path, count));
                }
            }
            for (mut path, count) in paths {
                path.retain(|p| cond_freq.get(p).copied().unwrap_or(0) >= min_support);
                if path.is_empty() {
                    continue;
                }
                path.sort_by_key(|&p| (std::cmp::Reverse(cond_freq[&p]), p));
                conditional.insert(&path, count);
                any = true;
            }
        }
        if any {
            suffix.push(item);
            mine_tree(&conditional, min_support, max_len, suffix, results);
            suffix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{mine_frequent_apriori, mine_frequent_bruteforce};

    fn tx(data: &[&[u32]]) -> Vec<Vec<u32>> {
        data.iter().map(|t| t.to_vec()).collect()
    }

    fn normalized(mut v: Vec<FrequentItemset>) -> Vec<(Vec<u32>, u64)> {
        v.sort_by(|a, b| a.items.cmp(&b.items));
        v.into_iter().map(|f| (f.items, f.support)).collect()
    }

    #[test]
    fn textbook_example_matches_apriori() {
        let t = tx(&[&[1, 2, 3], &[1, 2], &[1, 3], &[2, 3], &[1, 2, 3, 4]]);
        for min_support in 1..=4 {
            let fp = normalized(mine_frequent_fpgrowth(&t, min_support, 4));
            let ap = normalized(mine_frequent_apriori(&t, min_support, 4));
            assert_eq!(fp, ap, "min_support={min_support}");
        }
    }

    #[test]
    fn single_transaction() {
        let t = tx(&[&[5, 7, 9]]);
        let fp = normalized(mine_frequent_fpgrowth(&t, 1, 3));
        assert_eq!(fp.len(), 7); // all non-empty subsets
        assert!(fp.iter().all(|(_, s)| *s == 1));
    }

    #[test]
    fn respects_max_len() {
        let t = tx(&[&[1, 2, 3], &[1, 2, 3]]);
        let fp = mine_frequent_fpgrowth(&t, 1, 2);
        assert!(fp.iter().all(|f| f.len() <= 2));
    }

    #[test]
    fn empty_and_infrequent_inputs() {
        assert!(mine_frequent_fpgrowth(&[], 1, 3).is_empty());
        let t = tx(&[&[1], &[2], &[3]]);
        assert!(mine_frequent_fpgrowth(&t, 2, 3).is_empty());
    }

    #[test]
    fn agrees_with_bruteforce_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..25 {
            let n_tx = rng.gen_range(1..25);
            let t: Vec<Vec<u32>> = (0..n_tx)
                .map(|_| {
                    let len = rng.gen_range(0..7);
                    (0..len).map(|_| rng.gen_range(0..10)).collect()
                })
                .collect();
            let min_support = rng.gen_range(1..4);
            let fp = normalized(mine_frequent_fpgrowth(&t, min_support, 4));
            let brute = normalized(mine_frequent_bruteforce(&t, min_support, 4));
            assert_eq!(fp, brute, "case {case}");
        }
    }

    #[test]
    fn duplicate_items_in_transaction_counted_once() {
        let t = tx(&[&[1, 1, 2], &[2, 1]]);
        let fp = normalized(mine_frequent_fpgrowth(&t, 2, 2));
        assert!(fp.contains(&(vec![1, 2], 2)));
        assert!(fp.contains(&(vec![1], 2)));
    }
}
