//! Exact top-K frequent itemset extraction.
//!
//! The tKd metric (Section 6, Equation 2) compares the *top-1000* frequent
//! itemsets of the original and anonymized data.  Top-K mining is reduced to
//! threshold mining with a provably sufficient threshold:
//!
//! 1. count singleton supports and let `θ` be the K-th largest singleton
//!    support (1 when there are fewer than K items);
//! 2. mine all itemsets with support ≥ `θ` — every member of the true top-K
//!    has support ≥ the K-th largest itemset support, which is ≥ `θ` because
//!    the K most frequent singletons are themselves itemsets;
//! 3. sort canonically and keep the first K.
//!
//! A low `θ` can mean *enumerate every itemset of every (repeated) record*
//! — up to `Σ_t C(|t|, max_len)` subsets, which is ~10^8 for a single
//! 200-term click-stream record and effectively unbounded. The derived
//! threshold is therefore raised until the estimated enumeration work fits
//! a fixed budget, trading the (arbitrarily tie-ranked) low-support tail of
//! the top-K for a bounded run; exactness on small inputs is preserved.

use crate::{mine_frequent_apriori, mine_frequent_fpgrowth, sort_canonical, FrequentItemset};
use std::collections::HashMap;

/// Which mining algorithm to run underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinerKind {
    /// FP-growth (default — fastest on the paper-scale datasets).
    #[default]
    FpGrowth,
    /// Level-wise Apriori (reference implementation).
    Apriori,
}

/// Configuration of a top-K mining run.
#[derive(Debug, Clone)]
pub struct TopKConfig {
    /// How many itemsets to return (the paper uses 1000).
    pub k: usize,
    /// Maximum itemset length considered (the top-1000 of the evaluation
    /// datasets are short; 4 is a safe default).
    pub max_len: usize,
    /// Mining algorithm.
    pub miner: MinerKind,
    /// Optional floor for the derived threshold, as a fraction of the number
    /// of transactions.  Guards against pathological inputs where the K-th
    /// singleton support is tiny and threshold mining would enumerate an
    /// enormous number of itemsets.
    pub min_relative_support: Option<f64>,
    /// Optional absolute floor for the derived threshold.  Unlike
    /// [`min_relative_support`](Self::min_relative_support) it does not
    /// depend on the mined dataset's own transaction count, so a metric
    /// comparing two datasets of different sizes (e.g. tKd's original vs.
    /// chunk subrecords) can apply the *same* cut-off to both sides.
    pub min_absolute_support: Option<u64>,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            k: 1000,
            max_len: 4,
            miner: MinerKind::FpGrowth,
            min_relative_support: None,
            min_absolute_support: None,
        }
    }
}

impl TopKConfig {
    /// The configuration used throughout the paper's evaluation
    /// (top-1000 frequent itemsets).
    pub fn paper_default() -> Self {
        TopKConfig::default()
    }
}

/// Mines the top-`config.k` frequent itemsets of `transactions`.
///
/// Results are sorted by descending support (ties: shorter first, then
/// lexicographic), truncated to K.
pub fn top_k_frequent(transactions: &[Vec<u32>], config: &TopKConfig) -> Vec<FrequentItemset> {
    if config.k == 0 || transactions.is_empty() {
        return Vec::new();
    }
    let threshold = derive_threshold(transactions, config);
    let mut mined = match config.miner {
        MinerKind::FpGrowth => mine_frequent_fpgrowth(transactions, threshold, config.max_len),
        MinerKind::Apriori => mine_frequent_apriori(transactions, threshold, config.max_len),
    };
    sort_canonical(&mut mined);
    mined.truncate(config.k);
    mined
}

/// Derives the mining threshold described in the module docs.
fn derive_threshold(transactions: &[Vec<u32>], config: &TopKConfig) -> u64 {
    // Distinct records (as sets) with multiplicities; singleton supports
    // follow from the multiplicities without re-scanning the transactions.
    let mut distinct: HashMap<Vec<u32>, u64> = HashMap::new();
    for t in transactions {
        let mut set = t.clone();
        set.sort_unstable();
        set.dedup();
        *distinct.entry(set).or_insert(0) += 1;
    }
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for (set, &multiplicity) in &distinct {
        for &item in set {
            *counts.entry(item).or_insert(0) += multiplicity;
        }
    }
    let mut supports: Vec<u64> = counts.into_values().collect();
    supports.sort_unstable_by(|a, b| b.cmp(a));
    let kth = supports
        .get(config.k.saturating_sub(1))
        .copied()
        .unwrap_or(1);
    let relative_floor = config
        .min_relative_support
        .map(|f| ((transactions.len() as f64) * f).ceil() as u64)
        .unwrap_or(1);
    let absolute_floor = config.min_absolute_support.unwrap_or(1);
    let mut threshold = kth.max(relative_floor).max(absolute_floor).max(1);

    // Anti-blowup guard. The subsets of a single record can reach support
    // `θ` on their own only when the record (as a set) repeats at least `θ`
    // times, so the dominant term of the enumeration work at threshold `θ`
    // is `Σ_{distinct t: count(t) ≥ θ} Σ_j C(|t|, j)` — a step function of
    // `θ` that loses a record's contribution exactly when `θ` passes its
    // multiplicity. Walk the contributing records in ascending multiplicity
    // order, raising the threshold just past each one, until the remaining
    // work fits the budget. Explosions driven by *near*-duplicate long
    // records are not caught by this estimate; the paper's workloads have
    // no such records.
    let mut contributors: Vec<(u64, f64)> = distinct
        .iter()
        .filter(|&(_, &count)| count >= threshold)
        .map(|(set, &count)| (count, subset_work(set.len(), config.max_len)))
        .collect();
    contributors.sort_unstable_by_key(|a| a.0);
    let mut work: f64 = contributors.iter().map(|&(_, w)| w).sum();
    for &(count, record_work) in &contributors {
        if work <= SUBSET_WORK_BUDGET {
            break;
        }
        threshold = count + 1;
        work -= record_work;
    }
    threshold
}

/// Upper bound on the estimated subset-enumeration work accepted before the
/// degenerate floor of the module docs kicks in (a few million subsets ≈
/// well under a second of mining).
const SUBSET_WORK_BUDGET: f64 = 4_000_000.0;

/// Number of subsets of length `1..=max_len` of an `n`-term record:
/// `Σ_{j=1..max_len} C(n, j)`.
fn subset_work(n: usize, max_len: usize) -> f64 {
    let n = n as f64;
    let mut total = 0.0;
    let mut c = 1.0;
    for j in 1..=max_len {
        c = c * (n - (j as f64 - 1.0)) / j as f64;
        if c <= 0.0 {
            break;
        }
        total += c;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::mine_frequent_bruteforce;

    fn tx(data: &[&[u32]]) -> Vec<Vec<u32>> {
        data.iter().map(|t| t.to_vec()).collect()
    }

    #[test]
    fn returns_at_most_k_results_sorted_by_support() {
        let t = tx(&[&[1, 2], &[1, 2], &[1, 3], &[1], &[2]]);
        let top = top_k_frequent(
            &t,
            &TopKConfig {
                k: 3,
                ..TopKConfig::default()
            },
        );
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].support >= w[1].support));
        assert_eq!(top[0].items, vec![1]);
        assert_eq!(top[0].support, 4);
    }

    #[test]
    fn top_k_matches_bruteforce_ranking() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n_tx = rng.gen_range(5..30);
            let t: Vec<Vec<u32>> = (0..n_tx)
                .map(|_| {
                    let len = rng.gen_range(1..6);
                    (0..len).map(|_| rng.gen_range(0..8)).collect()
                })
                .collect();
            let k = 10;
            let top = top_k_frequent(
                &t,
                &TopKConfig {
                    k,
                    max_len: 3,
                    ..TopKConfig::default()
                },
            );

            let mut all = mine_frequent_bruteforce(&t, 1, 3);
            sort_canonical(&mut all);
            all.truncate(k);
            // The exact itemsets can differ on support ties, but the support
            // sequence (the ranking) must be identical.
            let got: Vec<u64> = top.iter().map(|f| f.support).collect();
            let want: Vec<u64> = all.iter().map(|f| f.support).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn both_miners_agree() {
        let t = tx(&[&[1, 2, 3], &[1, 2], &[2, 3], &[1, 3], &[1, 2, 3]]);
        let a = top_k_frequent(
            &t,
            &TopKConfig {
                k: 8,
                miner: MinerKind::Apriori,
                ..TopKConfig::default()
            },
        );
        let b = top_k_frequent(
            &t,
            &TopKConfig {
                k: 8,
                miner: MinerKind::FpGrowth,
                ..TopKConfig::default()
            },
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.items, y.items);
            assert_eq!(x.support, y.support);
        }
    }

    #[test]
    fn zero_k_or_empty_input() {
        assert!(top_k_frequent(&[], &TopKConfig::default()).is_empty());
        let t = tx(&[&[1]]);
        assert!(top_k_frequent(
            &t,
            &TopKConfig {
                k: 0,
                ..TopKConfig::default()
            }
        )
        .is_empty());
    }

    #[test]
    fn k_larger_than_available_itemsets() {
        let t = tx(&[&[1], &[2]]);
        let top = top_k_frequent(
            &t,
            &TopKConfig {
                k: 100,
                ..TopKConfig::default()
            },
        );
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn relative_support_floor_is_applied() {
        let t: Vec<Vec<u32>> = (0..100u32).map(|i| vec![i]).collect();
        let cfg = TopKConfig {
            k: 50,
            min_relative_support: Some(0.05),
            ..TopKConfig::default()
        };
        // Every item has support 1 < 5 (the floor), so nothing is mined.
        assert!(top_k_frequent(&t, &cfg).is_empty());
    }

    #[test]
    fn paper_default_is_top_1000() {
        assert_eq!(TopKConfig::paper_default().k, 1000);
    }

    /// Regression test for the anti-blowup guard: a 250-term record has
    /// ~C(250, 4) ≈ 1.6e8 subsets of length ≤ 4, so threshold-1 mining
    /// would hang. The guard must bound the run whether the long record is
    /// unique (degenerate threshold 1) or duplicated (its subsets all have
    /// support 2, so a naive raise to threshold 2 is not enough).
    #[test]
    fn long_records_do_not_explode_top_k_mining() {
        let long: Vec<u32> = (0..250).collect();
        // Unique long record among short ones.
        let mut t: Vec<Vec<u32>> = (0..50u32).map(|i| vec![i % 10, 10 + (i % 5)]).collect();
        t.push(long.clone());
        let top = top_k_frequent(
            &t,
            &TopKConfig {
                k: 1000,
                ..TopKConfig::default()
            },
        );
        assert!(!top.is_empty());

        // Duplicated long record.
        t.push(long);
        let top = top_k_frequent(
            &t,
            &TopKConfig {
                k: 1000,
                ..TopKConfig::default()
            },
        );
        assert!(!top.is_empty());
    }
}
