//! Criterion micro-benchmarks of the comparison methods (Apriori
//! generalization and DiffPart) against the disassociation pipeline on the
//! same workload — the runtime side of the Figure 11 comparison.

use baselines::{AprioriAnonymizer, AprioriConfig, DiffPart, DiffPartConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{QuestConfig, QuestGenerator};
use disassociation::{DisassociationConfig, Disassociator};
use hierarchy::Taxonomy;
use transact::Dataset;

fn workload() -> (Dataset, Taxonomy) {
    let dataset = QuestGenerator::generate_with(QuestConfig {
        num_transactions: 3_000,
        domain_size: 300,
        avg_transaction_len: 6.0,
        seed: 0xBA5E,
        ..QuestConfig::default()
    });
    let taxonomy = Taxonomy::balanced(300, 4);
    (dataset, taxonomy)
}

fn bench_methods(c: &mut Criterion) {
    let (dataset, taxonomy) = workload();
    let mut group = c.benchmark_group("anonymizers-3k-records");
    group.sample_size(10);
    group.bench_function("disassociation", |b| {
        b.iter(|| {
            Disassociator::try_new(DisassociationConfig {
                k: 5,
                m: 2,
                parallel: false,
                ..Default::default()
            })
            .expect("valid disassociation configuration")
            .anonymize(&dataset)
        })
    });
    group.bench_function("apriori-generalization", |b| {
        b.iter(|| {
            AprioriAnonymizer::new(
                &taxonomy,
                AprioriConfig {
                    k: 5,
                    m: 2,
                    ..Default::default()
                },
            )
            .anonymize(&dataset)
        })
    });
    group.bench_function("diffpart", |b| {
        b.iter(|| DiffPart::new(&taxonomy, DiffPartConfig::default()).sanitize(&dataset))
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
