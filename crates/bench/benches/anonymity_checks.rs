//! Criterion micro-benchmarks of the k^m-anonymity chunk checks — the
//! innermost loop of VERPART (the paper's complexity analysis singles this
//! step out as the expensive part of vertical partitioning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disassociation::anonymity::{is_k_anonymous, is_km_anonymous, IncrementalChecker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transact::{Record, TermId};

/// A synthetic cluster of `n` records over `domain` terms with skew.
fn cluster(n: usize, domain: u32, avg_len: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..=avg_len * 2);
            Record::from_ids((0..len).map(|_| {
                // Quadratic skew towards small ids.
                let u: f64 = rng.gen();
                TermId::new((u * u * domain as f64) as u32)
            }))
        })
        .collect()
}

fn bench_km_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_km_anonymous");
    for &(n, m) in &[(50usize, 2usize), (50, 3), (200, 2)] {
        let records = cluster(n, 30, 5, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &records,
            |b, r| b.iter(|| is_km_anonymous(r, 5, m)),
        );
    }
    group.finish();
}

fn bench_k_check(c: &mut Criterion) {
    let records = cluster(200, 30, 5, 11);
    c.bench_function("is_k_anonymous/200", |b| {
        b.iter(|| is_k_anonymous(&records, 5))
    });
}

fn bench_incremental_checker(c: &mut Criterion) {
    let records = cluster(50, 40, 6, 13);
    c.bench_function("incremental_checker/greedy-pass", |b| {
        b.iter(|| {
            let mut checker = IncrementalChecker::new(&records, 5, 2);
            let mut accepted = 0usize;
            for raw in 0..40u32 {
                let t = TermId::new(raw);
                if checker.can_add(t) {
                    checker.add(t);
                    accepted += 1;
                }
            }
            accepted
        })
    });
}

criterion_group!(
    benches,
    bench_km_check,
    bench_k_check,
    bench_incremental_checker
);
criterion_main!(benches);
