//! Criterion micro-benchmarks of the anonymization pipeline phases
//! (HORPART, VERPART, REFINE and the end-to-end Disassociator), sized so the
//! whole suite runs in a couple of minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{QuestConfig, QuestGenerator};
use disassociation::horpart::{horizontal_partition, merge_small_clusters};
use disassociation::refine::{refine, RefineOptions, WorkCluster, WorkNode};
use disassociation::verpart::{vertical_partition, VerPartOptions};
use disassociation::{DisassociationConfig, Disassociator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use transact::Dataset;

fn workload(records: usize) -> Dataset {
    QuestGenerator::generate_with(QuestConfig {
        num_transactions: records,
        domain_size: 1_000,
        avg_transaction_len: 8.0,
        seed: 0xBE7C,
        ..QuestConfig::default()
    })
}

fn bench_horpart(c: &mut Criterion) {
    let mut group = c.benchmark_group("horpart");
    for &n in &[2_000usize, 10_000] {
        let dataset = workload(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dataset, |b, d| {
            b.iter(|| horizontal_partition(d, 50, &BTreeSet::new()))
        });
    }
    group.finish();
}

fn bench_verpart(c: &mut Criterion) {
    let dataset = workload(5_000);
    let mut partition = horizontal_partition(&dataset, 50, &BTreeSet::new());
    merge_small_clusters(&mut partition, 5);
    // The largest cluster is the most expensive unit of work.
    let largest = partition
        .clusters
        .iter()
        .max_by_key(|c| c.len())
        .cloned()
        .unwrap_or_default();
    let records: Vec<transact::Record> = largest
        .iter()
        .map(|&i| dataset.records()[i].clone())
        .collect();
    c.bench_function("verpart/largest-cluster", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            vertical_partition(&records, 5, 2, &VerPartOptions::publication(), &mut rng)
        })
    });
}

fn bench_refine(c: &mut Criterion) {
    let dataset = workload(5_000);
    let mut partition = horizontal_partition(&dataset, 50, &BTreeSet::new());
    merge_small_clusters(&mut partition, 5);
    let clusters: Vec<WorkCluster> = partition
        .clusters
        .iter()
        .map(|indices| {
            let records: Vec<transact::Record> = indices
                .iter()
                .map(|&i| dataset.records()[i].clone())
                .collect();
            let mut rng = StdRng::seed_from_u64(2);
            let cluster =
                vertical_partition(&records, 5, 2, &VerPartOptions::publication(), &mut rng);
            WorkCluster::new(indices.clone(), records, cluster)
        })
        .collect();
    c.bench_function("refine/5k-records", |b| {
        b.iter(|| {
            let nodes: Vec<WorkNode> = clusters.iter().cloned().map(WorkNode::Simple).collect();
            let mut rng = StdRng::seed_from_u64(3);
            refine(nodes, 5, 2, &RefineOptions::default(), &mut rng)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("disassociate");
    group.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        let dataset = workload(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dataset, |b, d| {
            b.iter(|| {
                Disassociator::try_new(DisassociationConfig {
                    k: 5,
                    m: 2,
                    parallel: false,
                    ..Default::default()
                })
                .expect("valid disassociation configuration")
                .anonymize(d)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_horpart,
    bench_verpart,
    bench_refine,
    bench_end_to_end
);
criterion_main!(benches);
