//! Criterion micro-benchmarks of the frequent-itemset miners behind the tKd
//! metric (Apriori vs FP-growth, and exact top-K extraction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{QuestConfig, QuestGenerator};
use fimi::{
    mine_frequent_apriori, mine_frequent_fpgrowth, records_to_transactions, top_k_frequent,
    TopKConfig,
};

fn transactions(records: usize) -> Vec<Vec<u32>> {
    let dataset = QuestGenerator::generate_with(QuestConfig {
        num_transactions: records,
        domain_size: 500,
        avg_transaction_len: 8.0,
        seed: 0x417E,
        ..QuestConfig::default()
    });
    records_to_transactions(dataset.records())
}

fn bench_miners(c: &mut Criterion) {
    let tx = transactions(5_000);
    let min_support = (tx.len() / 100) as u64; // 1% support
    let mut group = c.benchmark_group("mine_frequent");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("apriori", "5k"), &tx, |b, t| {
        b.iter(|| mine_frequent_apriori(t, min_support, 3))
    });
    group.bench_with_input(BenchmarkId::new("fpgrowth", "5k"), &tx, |b, t| {
        b.iter(|| mine_frequent_fpgrowth(t, min_support, 3))
    });
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let tx = transactions(10_000);
    let mut group = c.benchmark_group("top_k_frequent");
    group.sample_size(10);
    for &k in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &tx, |b, t| {
            b.iter(|| {
                top_k_frequent(
                    t,
                    &TopKConfig {
                        k,
                        max_len: 3,
                        ..TopKConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_miners, bench_topk);
criterion_main!(benches);
