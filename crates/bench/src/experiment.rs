//! Experiment reporting: named series of (x, y) points, rendered both as an
//! aligned text table (the console output) and as JSON (written under
//! `experiments/out/` for EXPERIMENTS.md and plotting).

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A single measured series (one curve/bar group of a figure).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Series {
    /// Series name (e.g. `tKd-a`, `Disassociation`, `DiffPart`).
    pub name: String,
    /// Points as `(x-label, value)`.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: &str) -> Self {
        Series {
            name: name.to_owned(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl ToString, y: f64) {
        self.points.push((x.to_string(), y));
    }
}

/// A reproduced figure or table: metadata plus the measured series.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id (e.g. `fig07a`).
    pub id: String,
    /// What the paper plots there.
    pub title: String,
    /// The workload / parameters used for this run.
    pub parameters: String,
    /// The scale factor relative to the paper's workload (1 = full size).
    pub scale: usize,
    /// Hardware context: what `std::thread::available_parallelism` reported
    /// when the run was recorded (0 = unknown / pre-dates this field).
    /// Thread-scaling series — e.g. the `pipeline` speedup in `BENCH_core` —
    /// are only interpretable against the core count they ran on: a ≈1.0
    /// speedup on 1 core is expected, not a regression.
    #[serde(default)]
    pub available_parallelism: usize,
    /// The measured series.
    pub series: Vec<Series>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, parameters: &str, scale: usize) -> Self {
        ExperimentReport {
            id: id.to_owned(),
            title: title.to_owned(),
            parameters: parameters.to_owned(),
            scale,
            available_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(0),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Renders the report as an aligned text table (x labels as rows, series
    /// as columns) — the same rows/series the paper's figures plot.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!(
            "params: {} (scale 1/{}, {} available core(s))\n",
            self.parameters, self.scale, self.available_parallelism
        ));
        if self.series.is_empty() {
            return out;
        }
        // Collect the union of x labels in first-appearance order.
        let mut labels: Vec<String> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !labels.contains(x) {
                    labels.push(x.clone());
                }
            }
        }
        let xw = labels.iter().map(String::len).max().unwrap_or(1).max(8);
        out.push_str(&format!("{:<xw$}", "x"));
        for s in &self.series {
            out.push_str(&format!(" {:>12}", s.name));
        }
        out.push('\n');
        for label in &labels {
            out.push_str(&format!("{label:<xw$}"));
            for s in &self.series {
                match s.points.iter().find(|(x, _)| x == label) {
                    Some((_, y)) => out.push_str(&format!(" {y:>12.4}")),
                    None => out.push_str(&format!(" {:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the report as JSON under `dir` (named `<id>.json`) and the text
    /// table as `<id>.txt`; returns the JSON path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&json_path)?;
        f.write_all(
            serde_json::to_string_pretty(self)
                .expect("report serialization cannot fail")
                .as_bytes(),
        )?;
        let txt_path = dir.join(format!("{}.txt", self.id));
        std::fs::write(txt_path, self.render_table())?;
        Ok(json_path)
    }

    /// The default output directory (`experiments/out` at the workspace root,
    /// or the current directory when run from elsewhere).
    pub fn default_output_dir() -> PathBuf {
        let candidate = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments/out");
        candidate
    }

    /// Prints the table to stdout and writes the files to the default
    /// directory — the tail shared by every experiment binary.
    pub fn finish(&self) {
        print!("{}", self.render_table());
        match self.write_to(&Self::default_output_dir()) {
            Ok(path) => println!("(report written to {})\n", path.display()),
            Err(e) => eprintln!("warning: could not write report: {e}"),
        }
    }
}

/// Builds a `counters` series from the delta between two obs metric
/// snapshots: one point per counter whose value changed (zero-delta counters
/// are elided so the BENCH JSON stays readable).  Embedding these next to
/// the timing series lets the perf trajectory record *why* numbers moved —
/// join accept rates, checker path mix, WAL/compaction activity — not just
/// that they moved.
pub fn counters_series(
    before: &disassoc_obs::metrics::Snapshot,
    after: &disassoc_obs::metrics::Snapshot,
) -> Series {
    let mut series = Series::new("counters");
    for (name, value) in &after.counters {
        let prior = before.counter(name).unwrap_or(0);
        let delta = value.saturating_sub(prior);
        if delta > 0 {
            series.push(name, delta as f64);
        }
    }
    series
}

/// Serializes bench sections that toggle the process-global obs metrics flag
/// (the `cargo test` harness runs the bench smoke tests of several modules
/// in parallel threads of one process).
pub(crate) fn obs_toggle_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parses the common `--scale N` argument of the experiment binaries (the
/// factor by which the paper's workload sizes are divided); `default` is used
/// when the flag is absent.
pub fn parse_scale_arg(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--scale" {
            if let Ok(v) = window[1].parse::<usize>() {
                return v.max(1);
            }
        }
    }
    default.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_series() {
        let mut report = ExperimentReport::new("figXX", "demo", "k=5, m=2", 10);
        let mut a = Series::new("tKd");
        a.push("POS", 0.05);
        a.push("WV1", 0.10);
        let mut b = Series::new("re");
        b.push("POS", 0.5);
        report.add_series(a);
        report.add_series(b);
        let table = report.render_table();
        assert!(table.contains("figXX"));
        assert!(table.contains("tKd"));
        assert!(table.contains("0.0500"));
        assert!(table.contains("POS"));
        // Missing points render as '-'.
        assert!(table
            .lines()
            .any(|l| l.starts_with("WV1") && l.contains('-')));
    }

    #[test]
    fn write_to_produces_json_and_txt() {
        let dir = std::env::temp_dir().join("disassoc_bench_report_test");
        let mut report = ExperimentReport::new("fig_test", "demo", "none", 1);
        let mut s = Series::new("y");
        s.push(1, 2.0);
        report.add_series(s);
        let json = report.write_to(&dir).unwrap();
        assert!(json.exists());
        assert!(dir.join("fig_test.txt").exists());
        let text = std::fs::read_to_string(&json).unwrap();
        let parsed: ExperimentReport = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hardware_context_is_recorded_and_rendered() {
        let report = ExperimentReport::new("fig_hw", "demo", "none", 1);
        assert!(
            report.available_parallelism >= 1,
            "available_parallelism should be detectable on any test host"
        );
        assert!(report.render_table().contains("available core(s)"));
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"available_parallelism\""));
        // Reports written before the field existed still parse (field
        // defaults to 0 = unknown).
        let legacy: ExperimentReport = serde_json::from_str(
            "{\"id\":\"x\",\"title\":\"t\",\"parameters\":\"p\",\"scale\":1,\"series\":[]}",
        )
        .unwrap();
        assert_eq!(legacy.available_parallelism, 0);
    }

    #[test]
    fn scale_arg_defaults_when_absent() {
        assert_eq!(parse_scale_arg(20), 20);
        assert_eq!(parse_scale_arg(0), 1);
    }
}
