//! Scenario evaluation harness (`BENCH_scenarios`): correctness coverage
//! measured like perf.
//!
//! For every workload of the [`Scenario`] matrix (dense market-basket,
//! sparse query-log, WV1 twin, unit-Zipf) the harness runs the anonymizer
//! through all four execution modes —
//!
//! * **full / in-memory** — one-shot [`Disassociator::anonymize`],
//! * **incremental / in-memory** — a 95% base build plus a 5% append
//!   through [`Disassociator::anonymize_incremental`],
//! * **full / store** — the streaming [`Pipeline`] over a persisted store,
//! * **incremental / store** — an [`IncrementalPipeline`] over the base
//!   store, appending 5% and republishing only dirty batches to a
//!   [`ChunkDir`],
//!
//! and **asserts `verify_structure` on every published output** before any
//! timing is reported: a scenario that breaks the k^m-anonymity guarantee
//! fails the harness, it does not produce a number.  Utility is tracked via
//! the paper's `tlost` metric for both the full and the incremental
//! publication, and the incremental series records how much of the
//! clustering each append actually dirtied.
//!
//! One [`Series`] per workload goes to `experiments/out/BENCH_scenarios.json`.

use crate::experiment::{counters_series, ExperimentReport, Series};
use datagen::Scenario;
use disassoc_store::{ChunkDir, Store, StoreConfig};
use disassociation::pipeline::{CollectSink, Pipeline};
use disassociation::verify::verify_structure;
use disassociation::{DisassociationConfig, Disassociator, IncrementalPipeline};
use std::time::Instant;
use transact::{Dataset, Record};

/// The privacy parameters of the paper's default evaluation setting.
const K: usize = 5;
const M: usize = 2;
/// Fraction of each workload held back as the append set (5%).
const APPEND_DIVISOR: usize = 20;

/// Runs the full evaluation matrix at `1/scale` of each workload's size and
/// reports the `BENCH_scenarios.json` trajectory.
///
/// # Panics
/// Panics if any mode of any workload publishes a dataset that fails
/// `verify_structure` — guarantee violations are harness failures.
pub fn bench_scenarios(scale: usize) -> ExperimentReport {
    let scale = scale.max(1);
    let mut report = ExperimentReport::new(
        "BENCH_scenarios",
        "scenario matrix: workloads x {full, incremental} x {memory, store}, verify_structure on every output",
        &format!("k={K}, m={M}, 95/5 base/append split, one series per workload"),
        scale,
    );
    // Run the matrix with obs metrics enabled and embed the counter deltas
    // (join accept rates, checker path mix, WAL/compaction/republish
    // activity) next to the timing series, so the trajectory records *why*
    // a scenario's numbers moved.  The guard serializes the global toggle
    // against other bench modules under the parallel test harness.
    let _obs_guard = crate::experiment::obs_toggle_lock();
    let before = disassoc_obs::metrics::snapshot();
    disassoc_obs::metrics::enable();
    for scenario in Scenario::ALL {
        report.add_series(run_scenario(scenario, scale));
    }
    disassoc_obs::metrics::disable();
    let after = disassoc_obs::metrics::snapshot();
    report.add_series(counters_series(&before, &after));
    report
}

fn run_scenario(scenario: Scenario, scale: usize) -> Series {
    let dataset = scenario.generate_scaled(scale);
    let records: Vec<Record> = dataset.records().to_vec();
    let n = records.len();
    let split = n - (n / APPEND_DIVISOR).max(1);
    let (base, delta) = records.split_at(split);
    let config = DisassociationConfig {
        k: K,
        m: M,
        ..Default::default()
    };
    let disassociator = Disassociator::new(config.clone());
    let batch_size = (n / 4).max(64);

    // Full / in-memory.
    let started = Instant::now();
    let full = disassociator.anonymize(&dataset);
    let full_memory_s = started.elapsed().as_secs_f64();
    assert_verified(scenario, "full/memory", &full.dataset);

    // Incremental / in-memory: build on the base (untimed — it is the run
    // being amortized), then time the append alone.
    let mut run = disassociator.anonymize_incremental(Dataset::from_records(base.to_vec()));
    let started = Instant::now();
    let outcome = run.append(delta);
    let incremental_memory_s = started.elapsed().as_secs_f64();
    let incremental_published = run.published_dataset();
    assert_verified(scenario, "incremental/memory", &incremental_published);

    // Full / store: persist everything, stream the pipeline off disk.
    let full_dir = tmpdir(scenario, "full");
    let full_store_s = {
        let mut store = Store::open(&full_dir, StoreConfig::default()).expect("open store");
        store.append_batch(&records).expect("ingest");
        store.flush().expect("flush");
        let started = Instant::now();
        let mut source = store.source(batch_size);
        let mut sink = CollectSink::for_config(&config);
        Pipeline::new(config.clone())
            .source(&mut source)
            .sink(&mut sink)
            .run()
            .expect("store pipeline");
        let secs = started.elapsed().as_secs_f64();
        assert_verified(scenario, "full/store", &sink.into_output().dataset);
        secs
    };
    std::fs::remove_dir_all(&full_dir).ok();

    // Incremental / store: base store + committed chunk dir, then time the
    // append plus the dirty-only republish.
    let incr_dir = tmpdir(scenario, "incr");
    let chunks_dir = incr_dir.join("chunks");
    let (incremental_store_s, republished_batches, total_batches) = {
        let store_dir = incr_dir.join("store");
        let mut store = Store::open(&store_dir, StoreConfig::default()).expect("open store");
        store.append_batch(base).expect("ingest base");
        store.flush().expect("flush");
        let mut pipeline = {
            let mut source = store.source(batch_size);
            IncrementalPipeline::build(config.clone(), &mut source).expect("build")
        };
        let mut chunks = ChunkDir::open(&chunks_dir).expect("open chunk dir");
        pipeline.publish_all(&mut chunks).expect("initial publish");

        let started = Instant::now();
        pipeline.append(delta);
        store.append_batch(delta).expect("persist delta");
        store.flush().expect("flush delta");
        let republished = pipeline.publish_dirty(&mut chunks).expect("republish");
        let secs = started.elapsed().as_secs_f64();

        let combined = chunks
            .combined_dataset()
            .expect("read chunks")
            .expect("nonempty publication");
        assert_verified(scenario, "incremental/store", &combined);
        (secs, republished, pipeline.batch_count())
    };
    std::fs::remove_dir_all(&incr_dir).ok();

    // Utility: the paper's tlost for both publications over the same
    // original records.
    let tlost_full = metrics::tlost(&dataset, &full.dataset);
    let tlost_incremental = metrics::tlost(&dataset, &incremental_published);

    let mut series = Series::new(scenario.name());
    series.push("records", n as f64);
    series.push("append_records", delta.len() as f64);
    series.push("full_memory_s", full_memory_s);
    series.push("incremental_memory_s", incremental_memory_s);
    series.push("full_store_s", full_store_s);
    series.push("incremental_store_s", incremental_store_s);
    series.push("dirty_cluster_fraction", outcome.dirty_fraction());
    series.push("new_clusters", outcome.new_clusters as f64);
    series.push("republished_batches", republished_batches as f64);
    series.push("total_batches", total_batches as f64);
    series.push("tlost_full", tlost_full);
    series.push("tlost_incremental", tlost_incremental);
    series
}

fn assert_verified(
    scenario: Scenario,
    mode: &str,
    published: &disassociation::DisassociatedDataset,
) {
    let report = verify_structure(published);
    assert!(
        report.is_ok(),
        "{} [{mode}] violates the k^m-anonymity guarantee: {:?}",
        scenario.name(),
        report.violations
    );
}

fn tmpdir(scenario: Scenario, mode: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "disassoc_bench_scenarios_{}_{mode}_{}",
        scenario.name(),
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_produces_one_series_per_workload() {
        let report = bench_scenarios(500);
        assert_eq!(report.id, "BENCH_scenarios");
        let names: Vec<&str> = report.series.iter().map(|s| s.name.as_str()).collect();
        let mut expected: Vec<&str> = Scenario::ALL.iter().map(Scenario::name).collect();
        expected.push("counters");
        assert_eq!(names, expected);
        let counters = report.series.last().expect("counters series");
        assert!(
            counters
                .points
                .iter()
                .any(|(x, y)| x == "core.join_attempts" && *y > 0.0),
            "counters series should record join attempts"
        );
        for series in report.series.iter().filter(|s| s.name != "counters") {
            for point in [
                "full_memory_s",
                "incremental_memory_s",
                "full_store_s",
                "incremental_store_s",
                "dirty_cluster_fraction",
                "tlost_full",
                "tlost_incremental",
            ] {
                assert!(
                    series.points.iter().any(|(x, _)| x == point),
                    "series {} lacks point {point}",
                    series.name
                );
            }
        }
    }
}
