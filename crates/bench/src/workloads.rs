//! Shared workload construction for the experiment binaries.

use datagen::{QuestConfig, QuestGenerator, RealDataset};
use transact::Dataset;

/// A workload plus the description used in reports.
#[derive(Debug, Clone)]
pub struct ScaledWorkload {
    /// Display name (e.g. `POS`, `quest-1M`).
    pub name: String,
    /// The generated records.
    pub dataset: Dataset,
    /// The scale divisor applied to the paper's size.
    pub scale: usize,
}

/// The three real-dataset profiles at `1/scale` of their published sizes.
pub fn real_scaled(scale: usize) -> Vec<ScaledWorkload> {
    RealDataset::ALL
        .iter()
        .map(|d| ScaledWorkload {
            name: d.name().to_owned(),
            dataset: d.generate_scaled(scale),
            scale,
        })
        .collect()
}

/// One real-dataset profile at `1/scale`.
pub fn real_one_scaled(which: RealDataset, scale: usize) -> ScaledWorkload {
    ScaledWorkload {
        name: which.name().to_owned(),
        dataset: which.generate_scaled(scale),
        scale,
    }
}

/// A Quest synthetic workload with explicit parameters (the paper's defaults
/// are 1M records, 5k terms, average length 10 — pass `records` already
/// scaled).
pub fn quest_scaled(records: usize, domain: usize, avg_len: f64, seed: u64) -> ScaledWorkload {
    let dataset = QuestGenerator::generate_with(QuestConfig {
        num_transactions: records.max(1),
        domain_size: domain.max(1),
        avg_transaction_len: avg_len,
        seed,
        ..QuestConfig::default()
    });
    ScaledWorkload {
        name: format!("quest-{}x{}x{:.0}", records, domain, avg_len),
        dataset,
        scale: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_scaled_produces_three_workloads() {
        let w = real_scaled(500);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].name, "POS");
        assert!(w.iter().all(|x| !x.dataset.is_empty()));
    }

    #[test]
    fn quest_scaled_respects_parameters() {
        let w = quest_scaled(500, 200, 6.0, 1);
        assert_eq!(w.dataset.len(), 500);
        assert!(w.dataset.domain_size() <= 200);
    }

    #[test]
    fn real_one_scaled_matches_profile_name() {
        let w = real_one_scaled(RealDataset::Wv2, 200);
        assert_eq!(w.name, "WV2");
        assert!(!w.dataset.is_empty());
    }
}
