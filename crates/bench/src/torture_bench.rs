//! Crash-point torture sweep + fault-layer overhead honesty
//! (`BENCH_torture`): enumerates every registered failpoint in the store
//! and publication layers under injected-error and panic-to-crash modes,
//! verifying recovery after each, and measures what the fault layer costs
//! when it is disarmed — the honesty series that keeps "zero-cost when
//! disabled" an empirical claim rather than a slogan.

use crate::experiment::{ExperimentReport, Series};
use disassoc_faults as faults;
use disassoc_store::{failpoints, ChunkDir, Store, StoreConfig};
use disassociation::pipeline::DatasetSource;
use disassociation::{DisassociationConfig, IncrementalPipeline};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;
use transact::Record;

/// Removes its directory on drop, surviving panics inside the sweep.
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn create(path: PathBuf) -> TempDir {
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("creating bench temp dir");
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.path).ok();
    }
}

fn records(n: usize, seed: u64) -> Vec<Record> {
    crate::workloads::quest_scaled(n, 60, 5.0, seed)
        .dataset
        .records()
        .to_vec()
}

fn torture_store_config() -> StoreConfig {
    StoreConfig {
        memtable_capacity: 8,
        compaction_min_segments: 2,
        ..StoreConfig::default()
    }
}

/// One crash point: run the store workload with `site` armed (panicking
/// when `panic_mode`), then verify recovery.  Returns `true` when the
/// fault fired and the reopened store held a consistent prefix.
fn store_point(dir: &Path, site: &str, panic_mode: bool, seed: u64) -> bool {
    let policy = if panic_mode {
        faults::Policy::crash().once()
    } else {
        faults::Policy::error().once()
    };
    faults::arm(site, policy);
    let all = records(60, seed);
    let sent = std::cell::Cell::new(0usize);
    let _ = catch_unwind(AssertUnwindSafe(|| -> disassoc_store::Result<()> {
        let mut store = Store::open(dir.join("store"), torture_store_config())?;
        for (i, batch) in all.chunks(4).enumerate() {
            sent.set(sent.get() + batch.len());
            store.append_batch(batch)?;
            if i % 4 == 3 {
                store.flush()?;
                store.compact()?;
            }
        }
        store.flush()?;
        store.compact()?;
        Ok(())
    }));
    let fired = faults::site_stats(site).map(|s| s.triggers).unwrap_or(0) == 1;
    faults::disarm_all();
    let recovered = Store::open(dir.join("store"), torture_store_config())
        .ok()
        .map(|store| {
            let got: Vec<Record> = store.scan(16).filter_map(|b| b.ok()).flatten().collect();
            got.len() <= sent.get() && got[..] == all[..got.len()]
        })
        .unwrap_or(false);
    fired && recovered
}

/// One publication crash point: commit a base chunk set, append, fail the
/// republish at `site`, and verify the visible publication is entirely old
/// or entirely new.
fn publish_point(dir: &Path, site: &str, panic_mode: bool, seed: u64) -> bool {
    let all = records(180, seed);
    let (base, delta) = all.split_at(144);
    let mut pipeline = {
        let mut source = DatasetSource::from_records(base, 36);
        IncrementalPipeline::build(
            DisassociationConfig {
                k: 3,
                m: 2,
                seed: 21,
                ..Default::default()
            },
            &mut source,
        )
        .expect("building the base pipeline")
    };
    {
        let mut chunks = ChunkDir::open(dir.join("chunks")).expect("opening the chunk dir");
        pipeline.publish_all(&mut chunks).expect("base publication");
    }
    let old_total = base.len();

    pipeline.append(delta);
    let policy = if panic_mode {
        faults::Policy::crash().once()
    } else {
        faults::Policy::error().once()
    };
    faults::arm(site, policy);
    let _ = catch_unwind(AssertUnwindSafe(|| -> disassoc_store::Result<()> {
        let mut chunks = ChunkDir::open(dir.join("chunks"))?;
        pipeline
            .publish_all(&mut chunks)
            .map_err(|e| disassoc_store::StoreError::corrupt(e.to_string()))?;
        Ok(())
    }));
    let fired = faults::site_stats(site).map(|s| s.triggers).unwrap_or(0) == 1;
    faults::disarm_all();
    let consistent = ChunkDir::open(dir.join("chunks"))
        .ok()
        .and_then(|chunks| chunks.combined_dataset().ok().flatten())
        .map(|dataset| {
            let total = dataset.total_records();
            (total == old_total || total == all.len())
                && disassociation::verify::verify_structure(&dataset).is_ok()
        })
        .unwrap_or(false);
    fired && consistent
}

/// The honesty series: what does the fault layer cost when no fault is
/// armed?  `disabled_check_ns` times the real `faults::check` fast path
/// (one relaxed atomic load) against an empty `baseline_ns` loop, and the
/// `ingest_*_s` points compare a full store ingest with the registry
/// disarmed vs. armed-for-somebody-else (a policy whose path filter never
/// matches, the worst case that still takes the registry lock).
fn overhead_series(seed: u64) -> Series {
    use std::hint::black_box;
    const ITERS: u64 = 20_000_000;
    faults::disarm_all();
    let started = Instant::now();
    for i in 0..ITERS {
        black_box(faults::check("bench.calibration.site")).ok();
        black_box(i);
    }
    let disabled_check_ns = started.elapsed().as_nanos() as f64 / ITERS as f64;
    let started = Instant::now();
    for i in 0..ITERS {
        black_box(i);
    }
    let baseline_ns = started.elapsed().as_nanos() as f64 / ITERS as f64;

    let ingest = |dir: &Path| -> f64 {
        let all = records(20_000, seed);
        let started = Instant::now();
        let mut store = Store::open(
            dir.join("store"),
            StoreConfig {
                memtable_capacity: 4096,
                ..StoreConfig::default()
            },
        )
        .expect("opening the overhead store");
        for batch in all.chunks(1024) {
            store.append_batch(batch).expect("appending");
        }
        store.flush().expect("sealing");
        started.elapsed().as_secs_f64()
    };
    let guard = TempDir::create(
        std::env::temp_dir().join(format!("disassoc_bench_torture_oh_{}", std::process::id())),
    );
    let disarmed_dir = guard.path.join("disarmed");
    std::fs::create_dir_all(&disarmed_dir).unwrap();
    let ingest_disarmed_s = ingest(&disarmed_dir);
    // Armed for a path that never matches: every seam check now goes
    // through the registry lock — the worst case short of actually firing.
    faults::arm(
        failpoints::WAL_APPEND,
        faults::Policy::error().when_path_contains("/never/matches/anywhere/"),
    );
    let armed_dir = guard.path.join("armed");
    std::fs::create_dir_all(&armed_dir).unwrap();
    let ingest_armed_other_s = ingest(&armed_dir);
    faults::disarm_all();

    let mut series = Series::new("faults_overhead");
    series.push("disabled_check_ns", disabled_check_ns);
    series.push("baseline_ns", baseline_ns);
    series.push("delta_ns", disabled_check_ns - baseline_ns);
    series.push("ingest_disarmed_s", ingest_disarmed_s);
    series.push("ingest_armed_other_s", ingest_armed_other_s);
    series.push(
        "armed_over_disarmed",
        ingest_armed_other_s / ingest_disarmed_s.max(1e-9),
    );
    series
}

/// Runs the crash-point sweep and the overhead honesty measurement (the
/// `BENCH_torture.json` report).  `seed` drives both the workload content
/// and the registry's probabilistic policies, so two runs with the same
/// seed exercise byte-identical schedules.
pub fn bench_torture(seed: u64) -> ExperimentReport {
    faults::set_seed(seed);
    let mut report = ExperimentReport::new(
        "BENCH_torture",
        "crash-point torture sweep + fault-layer overhead honesty",
        &format!(
            "seed {seed}; {} store + {} publish failpoints x error/panic modes",
            failpoints::STORE_SITES.len(),
            failpoints::PUBLISH_SITES.len()
        ),
        1,
    );

    // Silence the expected panic spew from the panic-mode points; the hook
    // is restored before returning.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let guard = TempDir::create(
        std::env::temp_dir().join(format!("disassoc_bench_torture_{}", std::process::id())),
    );
    let mut enumerated = 0u32;
    let mut recovered = 0u32;
    let started = Instant::now();
    for &site in failpoints::STORE_SITES {
        for panic_mode in [false, true] {
            let dir = guard
                .path
                .join(format!("{}_{}", site.replace('.', "_"), panic_mode));
            std::fs::create_dir_all(&dir).unwrap();
            enumerated += 1;
            recovered += store_point(&dir, site, panic_mode, seed) as u32;
        }
    }
    for &site in failpoints::PUBLISH_SITES {
        for panic_mode in [false, true] {
            let dir = guard
                .path
                .join(format!("{}_{}", site.replace('.', "_"), panic_mode));
            std::fs::create_dir_all(&dir).unwrap();
            enumerated += 1;
            recovered += publish_point(&dir, site, panic_mode, seed) as u32;
        }
    }
    let sweep_s = started.elapsed().as_secs_f64();
    std::panic::set_hook(prev_hook);
    assert_eq!(
        enumerated, recovered,
        "every enumerated crash point must fire and recover"
    );

    let mut points = Series::new("crash_points");
    points.push("store_sites", failpoints::STORE_SITES.len() as f64);
    points.push("publish_sites", failpoints::PUBLISH_SITES.len() as f64);
    points.push("enumerated", enumerated as f64);
    points.push("recovered", recovered as f64);
    points.push("faults_injected_total", faults::injected_total() as f64);
    points.push("sweep_s", sweep_s);
    report.add_series(points);
    report.add_series(overhead_series(seed));
    report
}
