//! # disassoc-bench — experiment harness
//!
//! One runner per table/figure of the paper's evaluation (Section 7), plus
//! Criterion micro-benchmarks.  Each runner is a binary under `src/bin/`
//! named after the figure it regenerates (`fig07a_real_loss`,
//! `fig11b_vs_apriori`, …); `run_all_experiments` executes every runner and
//! collects the reports under `experiments/out/`.
//!
//! The paper's full-size workloads (up to 10M synthetic records, the
//! 515k-record POS log) are reachable with `--scale 1`, but the default
//! scale keeps every experiment laptop-sized; EXPERIMENTS.md records the
//! scale used for the committed results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core_bench;
pub mod experiment;
pub mod figures;
pub mod scenario_bench;
pub mod store_bench;
pub mod torture_bench;
pub mod workloads;

pub use experiment::{parse_scale_arg, ExperimentReport, Series};
pub use workloads::{quest_scaled, real_scaled, ScaledWorkload};
