//! Runs every experiment of the evaluation (Figures 6–11) in sequence and
//! writes all reports under `experiments/out/`.
//!
//! Usage: `cargo run --release -p disassoc-bench --bin run_all_experiments [--scale N]`
//! where N multiplies the per-figure default scale divisors (N=1 keeps the
//! defaults; larger N shrinks every workload further for a quick smoke run).

use disassoc_bench::figures;

/// An experiment entry: report id, runner, default scale divisor.
type Run = (
    &'static str,
    fn(usize) -> disassoc_bench::ExperimentReport,
    usize,
);

fn main() {
    let extra = disassoc_bench::parse_scale_arg(1);
    let runs: Vec<Run> = vec![
        ("fig06", figures::fig06, 20),
        ("fig07a", figures::fig07a, 20),
        ("fig07b", figures::fig07b, 20),
        ("fig07c", figures::fig07c, 20),
        ("fig07d", figures::fig07d, 20),
        ("fig08ab", figures::fig08ab, 100),
        ("fig08c", figures::fig08c, 100),
        ("fig08d", figures::fig08d, 100),
        ("fig09a", figures::fig09a, 20),
        ("fig09b", figures::fig09b, 20),
        ("fig10a", figures::fig10a, 100),
        ("fig10b", figures::fig10b, 100),
        ("fig11a", figures::fig11a, 40),
        ("fig11b", figures::fig11b, 40),
        ("fig11c", figures::fig11c, 40),
        ("BENCH_store", disassoc_bench::store_bench::bench_store, 20),
        ("BENCH_core", disassoc_bench::core_bench::bench_core, 1),
    ];
    for (name, fun, default_scale) in runs {
        let scale = default_scale.saturating_mul(extra).max(1);
        eprintln!(">>> running {name} at scale 1/{scale}");
        let started = std::time::Instant::now();
        fun(scale).finish();
        eprintln!(
            "<<< {name} finished in {:.1}s\n",
            started.elapsed().as_secs_f64()
        );
    }
}
