//! Core anonymity-engine workload (see `disassoc_bench::core_bench`): the
//! VERPART microbenchmark (legacy `Itemset` checker vs dense bitset engine)
//! and the end-to-end pipeline phase timings, written to
//! `experiments/out/BENCH_core.json`.
//!
//! Usage: `cargo run --release -p disassoc-bench --bin bench_core [--scale N]`
//! (N divides the 50k-record Quest workload; default 1).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(1);
    disassoc_bench::core_bench::bench_core(scale).finish();
}
