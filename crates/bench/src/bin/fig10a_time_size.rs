//! Regenerates fig10a of the paper (see `disassoc_bench::figures::fig10a`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig10a_time_size [--scale N]`
//! (N divides the paper's workload size; default 100).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(100);
    disassoc_bench::figures::fig10a(scale).finish();
}
