//! Regenerates fig11c of the paper (see `disassoc_bench::figures::fig11c`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig11c_re_comparison [--scale N]`
//! (N divides the paper's workload size; default 40).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(40);
    disassoc_bench::figures::fig11c(scale).finish();
}
