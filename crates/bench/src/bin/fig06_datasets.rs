//! Regenerates fig06 of the paper (see `disassoc_bench::figures::fig06`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig06_datasets [--scale N]`
//! (N divides the paper's workload size; default 20).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(20);
    disassoc_bench::figures::fig06(scale).finish();
}
