//! Regenerates fig09b of the paper (see `disassoc_bench::figures::fig09b`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig09b_time_k [--scale N]`
//! (N divides the paper's workload size; default 20).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(20);
    disassoc_bench::figures::fig09b(scale).finish();
}
