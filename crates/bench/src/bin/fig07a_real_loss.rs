//! Regenerates fig07a of the paper (see `disassoc_bench::figures::fig07a`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig07a_real_loss [--scale N]`
//! (N divides the paper's workload size; default 20).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(20);
    disassoc_bench::figures::fig07a(scale).finish();
}
