//! Regenerates fig08d of the paper (see `disassoc_bench::figures::fig08d`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig08d_vary_reclen [--scale N]`
//! (N divides the paper's workload size; default 100).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(100);
    disassoc_bench::figures::fig08d(scale).finish();
}
