//! Scenario evaluation matrix (see `disassoc_bench::scenario_bench`): every
//! workload of the `Scenario` matrix through {full, incremental} x
//! {in-memory, store}, with `verify_structure` asserted on every output,
//! written to `experiments/out/BENCH_scenarios.json`.
//!
//! Usage: `cargo run --release -p disassoc-bench --bin bench_scenarios
//! [--scale N]` (N divides each workload's record count; default 1).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(1);
    disassoc_bench::scenario_bench::bench_scenarios(scale).finish();
}
