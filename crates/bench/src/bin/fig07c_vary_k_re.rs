//! Regenerates fig07c of the paper (see `disassoc_bench::figures::fig07c`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig07c_vary_k_re [--scale N]`
//! (N divides the paper's workload size; default 20).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(20);
    disassoc_bench::figures::fig07c(scale).finish();
}
