//! Crash-consistency torture sweep (see `disassoc_bench::torture_bench`):
//! enumerates every store/publication failpoint under error and panic
//! modes, verifies recovery at each, and measures the disarmed fault
//! layer's overhead, written to `experiments/out/BENCH_torture.json`.
//!
//! Usage: `cargo run --release -p disassoc-bench --bin bench_torture
//! [--seed N]` (default 7; the seed drives workload content and the
//! registry's deterministic probabilistic policies).

fn main() {
    let mut seed = 7u64;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects an unsigned integer");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: bench_torture [--seed N]");
                std::process::exit(2);
            }
        }
    }
    disassoc_bench::torture_bench::bench_torture(seed).finish();
}
