//! Storage-layer throughput workload (see `disassoc_bench::store_bench`):
//! ingest MB/s, scan records/s and compaction amplification of the
//! `disassoc-store` persistence layer, written to
//! `experiments/out/BENCH_store.json`.
//!
//! Usage: `cargo run --release -p disassoc-bench --bin bench_store [--scale N]`
//! (N divides the 1M-record Quest workload; default 20).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(20);
    disassoc_bench::store_bench::bench_store(scale).finish();
}
