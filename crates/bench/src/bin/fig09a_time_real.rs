//! Regenerates fig09a of the paper (see `disassoc_bench::figures::fig09a`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig09a_time_real [--scale N]`
//! (N divides the paper's workload size; default 20).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(20);
    disassoc_bench::figures::fig09a(scale).finish();
}
