//! Regenerates fig08c of the paper (see `disassoc_bench::figures::fig08c`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig08c_vary_domain [--scale N]`
//! (N divides the paper's workload size; default 100).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(100);
    disassoc_bench::figures::fig08c(scale).finish();
}
