//! Regenerates fig11a of the paper (see `disassoc_bench::figures::fig11a`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig11a_vs_diffpart [--scale N]`
//! (N divides the paper's workload size; default 40).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(40);
    disassoc_bench::figures::fig11a(scale).finish();
}
