//! Regenerates fig07b of the paper (see `disassoc_bench::figures::fig07b`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig07b_vary_k_tkd [--scale N]`
//! (N divides the paper's workload size; default 20).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(20);
    disassoc_bench::figures::fig07b(scale).finish();
}
