//! Regenerates fig11b of the paper (see `disassoc_bench::figures::fig11b`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig11b_vs_apriori [--scale N]`
//! (N divides the paper's workload size; default 40).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(40);
    disassoc_bench::figures::fig11b(scale).finish();
}
