//! Regenerates fig08ab of the paper (see `disassoc_bench::figures::fig08ab`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig08ab_vary_size [--scale N]`
//! (N divides the paper's workload size; default 100).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(100);
    disassoc_bench::figures::fig08ab(scale).finish();
}
