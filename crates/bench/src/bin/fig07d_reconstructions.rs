//! Regenerates fig07d of the paper (see `disassoc_bench::figures::fig07d`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig07d_reconstructions [--scale N]`
//! (N divides the paper's workload size; default 20).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(20);
    disassoc_bench::figures::fig07d(scale).finish();
}
