//! Regenerates fig10b of the paper (see `disassoc_bench::figures::fig10b`).
//! Usage: `cargo run --release -p disassoc-bench --bin fig10b_time_domain [--scale N]`
//! (N divides the paper's workload size; default 100).

fn main() {
    let scale = disassoc_bench::parse_scale_arg(100);
    disassoc_bench::figures::fig10b(scale).finish();
}
