//! Storage-layer throughput workload (`BENCH_store`): ingest, scan and
//! compaction of the `disassoc-store` persistence layer, so the perf
//! trajectory tracks the storage layer alongside the figure experiments.

use crate::experiment::{ExperimentReport, Series};
use crate::workloads::quest_scaled;
use disassoc_store::{Store, StoreConfig};
use disassociation::pipeline::{JsonChunksSink, Pipeline};
use disassociation::DisassociationConfig;
use std::time::Instant;
use transact::io::RecordReader;

/// Runs the storage throughput workload at `1/scale` of the paper's 1M-record
/// Quest default and reports ingest MB/s, scan records/s and compaction
/// amplification (the `BENCH_store.json` report).
pub fn bench_store(scale: usize) -> ExperimentReport {
    let scale = scale.max(1);
    let records = (1_000_000 / scale).max(1_000);
    let workload = quest_scaled(records, 5_000, 10.0, 77);
    let mut report = ExperimentReport::new(
        "BENCH_store",
        "disassoc-store ingest/scan/compaction throughput",
        &format!("quest {records} records, memtable 4096, batch 1024"),
        scale,
    );

    // Pid-suffixed so concurrent bench/test invocations don't clobber each
    // other's store; the guard removes it even if the run panics (a fixed
    // name would self-clean on the next run, a pid-suffixed one never
    // recurs).
    let guard = TempDir::create(
        std::env::temp_dir().join(format!("disassoc_bench_store_{}", std::process::id())),
    );
    let dir = guard.path.clone();
    let file = dir.join("data.dat");
    transact::io::write_numeric_transactions_path(&workload.dataset, &file)
        .expect("writing the workload file");
    let input_bytes = std::fs::metadata(&file).unwrap().len();

    // Ingest: stream the file through the WAL/memtable write path.
    let mut store = Store::open(
        dir.join("store"),
        StoreConfig {
            memtable_capacity: 4096,
            ..StoreConfig::default()
        },
    )
    .expect("opening the store");
    let started = Instant::now();
    let mut reader = RecordReader::open(&file).expect("opening the workload file");
    loop {
        let batch = reader.next_batch(1024).expect("reading the workload file");
        if batch.is_empty() {
            break;
        }
        store.append_batch(&batch).expect("appending to the store");
    }
    store.flush().expect("sealing the store");
    let ingest_secs = started.elapsed().as_secs_f64();
    let info = store.info().expect("reading store info");

    let mut ingest = Series::new("ingest");
    ingest.push("MB_per_s", mb(input_bytes) / ingest_secs.max(1e-9));
    ingest.push("records_per_s", records as f64 / ingest_secs.max(1e-9));
    ingest.push("segments", info.segments.len() as f64);
    ingest.push("segment_MB", mb(info.segment_bytes()));
    report.add_series(ingest);

    // Scan: chunked read of every record.
    let started = Instant::now();
    let mut scanned = 0u64;
    for batch in store.scan(1024) {
        scanned += batch.expect("scanning the store").len() as u64;
    }
    let scan_secs = started.elapsed().as_secs_f64();
    assert_eq!(scanned, records as u64);
    let mut scan = Series::new("scan");
    scan.push("records_per_s", scanned as f64 / scan_secs.max(1e-9));
    scan.push("MB_per_s", mb(info.segment_bytes()) / scan_secs.max(1e-9));
    report.add_series(scan);

    // Out-of-core anonymization: the store-backed pipeline with 1 worker vs
    // one per core, publishing through the streaming chunk sink (into the
    // void — this measures the pipeline, not the disk).  Output is
    // byte-identical across thread counts; only the wall clock moves.
    let config = DisassociationConfig {
        k: 5,
        m: 2,
        seed: 7,
        ..Default::default()
    };
    // At least two workers so the pool path is always exercised; on a
    // single-core host the speedup honestly reports ≈ 1.0 (pure overhead).
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .max(2);
    let mut pipeline = Series::new("pipeline");
    let seconds_for = |n: usize| {
        let mut source = store.source(2048);
        let mut sink = JsonChunksSink::numeric(std::io::sink(), &config);
        let started = Instant::now();
        let summary = Pipeline::new(config.clone())
            .source(&mut source)
            .sink(&mut sink)
            .threads(n)
            .run()
            .expect("store-backed pipeline run");
        assert_eq!(summary.records, records);
        started.elapsed().as_secs_f64()
    };
    let serial_secs = seconds_for(1);
    let parallel_secs = seconds_for(threads);
    pipeline.push("threads", threads as f64);
    pipeline.push("serial_s", serial_secs);
    pipeline.push("parallel_s", parallel_secs);
    pipeline.push("speedup", serial_secs / parallel_secs.max(1e-9));
    pipeline.push(
        "records_per_s_parallel",
        records as f64 / parallel_secs.max(1e-9),
    );
    report.add_series(pipeline);

    // Compaction: merge the spill-sized segments, record the write cost.
    let started = Instant::now();
    let stats = store.compact().expect("compacting the store");
    let compact_secs = started.elapsed().as_secs_f64();
    let mut compaction = Series::new("compaction");
    compaction.push("amplification", stats.amplification());
    compaction.push("segments_before", stats.segments_before as f64);
    compaction.push("segments_after", stats.segments_after as f64);
    compaction.push(
        "rewrite_MB_per_s",
        mb(stats.bytes_written) / compact_secs.max(1e-9),
    );
    report.add_series(compaction);

    drop(store);
    report
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Removes its directory on drop, so an interrupted bench run does not leak
/// a pid-suffixed directory under the system temp dir.
struct TempDir {
    path: std::path::PathBuf,
}

impl TempDir {
    fn create(path: std::path::PathBuf) -> Self {
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).unwrap();
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_store_produces_all_series() {
        // A tiny run (scale 1000 → 1k records) exercising the full path.
        let report = bench_store(1000);
        assert_eq!(report.id, "BENCH_store");
        let names: Vec<&str> = report.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["ingest", "scan", "pipeline", "compaction"]);
        for series in &report.series {
            for (x, y) in &series.points {
                assert!(y.is_finite(), "{x} not finite");
                assert!(*y >= 0.0, "{x} negative");
            }
        }
        // The workload must have spilled into multiple segments for the
        // compaction numbers to mean anything.
        let ingest = &report.series[0];
        let segs = ingest.points.iter().find(|(x, _)| x == "segments").unwrap();
        assert!(segs.1 >= 1.0);
    }
}
