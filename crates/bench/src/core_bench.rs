//! Core anonymity-engine workload (`BENCH_core`): the perf trajectory of the
//! k^m-anonymity hot path.
//!
//! Three series over a Quest workload at the paper's default k = 5, m = 2:
//!
//! * `verpart_ubench` — the VERPART greedy domain construction (the
//!   `can_add` inner loop, isolated from shuffling and materialization) run
//!   once per cluster with the legacy `Itemset`-based [`ReferenceChecker`]
//!   and once with the dense [`IncrementalChecker`] — the engines must take
//!   identical decisions, so the speedup column is apples-to-apples;
//! * `refine_ubench` — Algorithm REFINE over the vertically partitioned
//!   forest, run once with the pre-index [`refine_reference`] (per-pass
//!   subtree walks, record re-scans, materialized Property 1 trials) and
//!   once with the indexed [`refine`] (cached node metadata, per-cluster
//!   support indexes, pooled checker scratch) — the published forests must
//!   be identical, so the speedup column is apples-to-apples;
//! * `end_to_end` — the full pipeline (HorPart, VerPart, Refine) on the
//!   same records, phase by phase.
//!
//! Every later engine PR reruns this to extend `experiments/out/BENCH_core.json`.

use crate::experiment::{counters_series, ExperimentReport, Series};
use crate::workloads::quest_scaled;
use disassoc_obs::metrics as obs_metrics;
use disassociation::anonymity::{IncrementalChecker, ReferenceChecker};
use disassociation::horpart::{self, horizontal_partition};
use disassociation::refine::{refine, refine_reference, RefineOptions, WorkCluster, WorkNode};
use disassociation::verpart::{vertical_partition_with_supports, VerPartOptions};
use disassociation::{ClusterNode, DisassociationConfig, Disassociator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Instant;
use transact::{Record, SupportMap, TermId};

/// The privacy parameters of the paper's default evaluation setting.
const K: usize = 5;
const M: usize = 2;

/// Runs the core-engine workload at `1/scale` of a 50k-record Quest default
/// and reports the `BENCH_core.json` trajectory.
pub fn bench_core(scale: usize) -> ExperimentReport {
    let scale = scale.max(1);
    let records = (50_000 / scale).max(100);
    let workload = quest_scaled(records, 5_000, 10.0, 77);
    let mut report = ExperimentReport::new(
        "BENCH_core",
        "k^m-anonymity engine: VERPART (legacy vs dense) + REFINE (reference vs indexed) + end-to-end",
        &format!("quest {records} records, k={K}, m={M}"),
        scale,
    );

    // Cluster the dataset exactly like the pipeline does, so the microbench
    // sees the real cluster-size and term-skew distribution.
    let config = DisassociationConfig {
        k: K,
        m: M,
        ..Default::default()
    };
    let mut partition = horizontal_partition(
        &workload.dataset,
        config.effective_max_cluster_size(),
        &BTreeSet::new(),
    );
    horpart::merge_small_clusters(&mut partition, K);
    let clusters: Vec<Vec<Record>> = partition
        .clusters
        .iter()
        .map(|indices| {
            indices
                .iter()
                .map(|&i| workload.dataset.records()[i].clone())
                .collect()
        })
        .collect();

    // The candidate ordering (support counting) is identical for both
    // engines, so it is computed outside the timed sections: the microbench
    // measures checker work, nothing else.
    let candidates: Vec<Vec<TermId>> = clusters
        .iter()
        .map(|records| candidate_order(records))
        .collect();

    // Legacy pass.
    let started = Instant::now();
    let legacy_accepted: usize = clusters
        .iter()
        .zip(&candidates)
        .map(|(records, cand)| greedy_domains(ReferenceChecker::new(records, K, M), cand))
        .sum();
    let legacy_secs = started.elapsed().as_secs_f64();

    // Dense pass.
    let started = Instant::now();
    let dense_accepted: usize = clusters
        .iter()
        .zip(&candidates)
        .map(|(records, cand)| greedy_domains(IncrementalChecker::new(records, K, M), cand))
        .sum();
    let dense_secs = started.elapsed().as_secs_f64();

    assert_eq!(
        legacy_accepted, dense_accepted,
        "the engines must take identical greedy decisions"
    );

    let mut ubench = Series::new("verpart_ubench");
    ubench.push("legacy_s", legacy_secs);
    ubench.push("dense_s", dense_secs);
    ubench.push("speedup", legacy_secs / dense_secs.max(1e-9));
    ubench.push("clusters", clusters.len() as f64);
    ubench.push("accepted_terms", dense_accepted as f64);
    report.add_series(ubench);

    // REFINE microbench: the same vertically partitioned forest through the
    // pre-index reference and the indexed implementation.  Cloning the work
    // clusters happens outside the timed sections; equal-seeded RNGs keep
    // the shuffle streams aligned so the forests must come out identical.
    let work: Vec<WorkCluster> = clusters
        .iter()
        .enumerate()
        .map(|(i, records)| {
            // Seeded per cluster exactly like `Disassociator::partition_one`.
            let mut rng =
                StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let supports = SupportMap::from_records(records.iter());
            let cluster = vertical_partition_with_supports(
                records,
                &supports,
                K,
                M,
                &VerPartOptions::publication(),
                &mut rng,
            );
            WorkCluster::with_supports(
                partition.clusters[i].clone(),
                records.clone(),
                cluster,
                &supports,
            )
        })
        .collect();
    let refine_options = RefineOptions::default();
    let nodes_reference: Vec<WorkNode> = work.iter().cloned().map(WorkNode::Simple).collect();
    let nodes_indexed: Vec<WorkNode> = work.iter().cloned().map(WorkNode::Simple).collect();
    let nodes_in = work.len();
    drop(work);

    let started = Instant::now();
    let reference = refine_reference(
        nodes_reference,
        K,
        M,
        &refine_options,
        &mut StdRng::seed_from_u64(0x2EF1_5EEDu64),
    );
    let reference_secs = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let indexed = refine(
        nodes_indexed,
        K,
        M,
        &refine_options,
        &mut StdRng::seed_from_u64(0x2EF1_5EEDu64),
    );
    let indexed_secs = started.elapsed().as_secs_f64();

    assert_eq!(indexed.passes_used, reference.passes_used);
    assert_eq!(indexed.converged, reference.converged);
    let nodes_out = indexed.nodes.len();
    let indexed_pub: Vec<ClusterNode> = indexed
        .nodes
        .into_iter()
        .map(WorkNode::into_cluster_node)
        .collect();
    let reference_pub: Vec<ClusterNode> = reference
        .nodes
        .into_iter()
        .map(WorkNode::into_cluster_node)
        .collect();
    assert_eq!(
        indexed_pub, reference_pub,
        "the refine implementations must publish identical forests"
    );

    let mut refine_series = Series::new("refine_ubench");
    refine_series.push("reference_s", reference_secs);
    refine_series.push("indexed_s", indexed_secs);
    refine_series.push("speedup", reference_secs / indexed_secs.max(1e-9));
    refine_series.push("nodes_in", nodes_in as f64);
    refine_series.push("nodes_out", nodes_out as f64);
    refine_series.push("passes", indexed.passes_used as f64);
    report.add_series(refine_series);

    // End-to-end pipeline with the dense engine (obs disabled — this is the
    // trajectory number every later PR compares against).  The guard
    // serializes this section against other bench modules' obs toggling
    // when the test harness runs them in parallel threads.
    let _obs_guard = crate::experiment::obs_toggle_lock();
    obs_metrics::disable();
    let started = Instant::now();
    let output = Disassociator::new(config.clone()).anonymize_owned(workload.dataset.clone());
    let total = started.elapsed().as_secs_f64();
    let mut e2e = Series::new("end_to_end");
    e2e.push("horpart_s", output.phases.horpart);
    e2e.push("verpart_s", output.phases.verpart);
    e2e.push("refine_s", output.phases.refine);
    e2e.push("total_s", total);
    e2e.push("records_per_s", records as f64 / total.max(1e-9));
    report.add_series(e2e);

    // Bench honesty: the "zero-cost when disabled" claim is measured, not
    // asserted — the per-op cost of a disabled counter increment against an
    // empty loop, plus an obs-enabled end-to-end rerun against the disabled
    // one above.
    let before = obs_metrics::snapshot();
    obs_metrics::enable();
    let started = Instant::now();
    let enabled_output = Disassociator::new(config).anonymize_owned(workload.dataset.clone());
    let enabled_total = started.elapsed().as_secs_f64();
    obs_metrics::disable();
    let after = obs_metrics::snapshot();
    assert_eq!(
        enabled_output.dataset, output.dataset,
        "metrics collection must not change the publication"
    );
    report.add_series(overhead_series(total, enabled_total));
    // Counter deltas of the enabled run: the trajectory records *why* the
    // end-to-end numbers move (join accept rates, checker path mix), not
    // just that they moved.
    report.add_series(counters_series(&before, &after));

    report
}

/// Measures the disabled-instrumentation cost: `disabled_inc_ns` times a
/// disabled counter increment per loop iteration, `baseline_ns` the same
/// loop with the increment compiled out, `delta_ns` their difference (the
/// per-op price of leaving instrumentation in the hot loops).  The
/// `*_total_s` points compare the two end-to-end runs.
fn overhead_series(disabled_total_s: f64, enabled_total_s: f64) -> Series {
    use std::hint::black_box;
    // lint:allow(obs-name, "calibration scratch counter local to the overhead probe; never registered or published")
    static CALIBRATION: disassoc_obs::metrics::Counter = disassoc_obs::metrics::Counter::new(
        "bench.calibration",
        "Scratch counter for the disabled-overhead measurement",
    );
    const ITERS: u64 = 20_000_000;
    let started = Instant::now();
    for i in 0..ITERS {
        black_box(&CALIBRATION).inc();
        black_box(i);
    }
    let disabled_inc_ns = started.elapsed().as_nanos() as f64 / ITERS as f64;
    let started = Instant::now();
    for i in 0..ITERS {
        black_box(i);
    }
    let baseline_ns = started.elapsed().as_nanos() as f64 / ITERS as f64;

    let mut series = Series::new("obs_overhead");
    series.push("disabled_inc_ns", disabled_inc_ns);
    series.push("baseline_ns", baseline_ns);
    series.push("delta_ns", disabled_inc_ns - baseline_ns);
    series.push("disabled_total_s", disabled_total_s);
    series.push("enabled_total_s", enabled_total_s);
    series.push(
        "enabled_over_disabled",
        enabled_total_s / disabled_total_s.max(1e-9),
    );
    series
}

/// The candidate order VERPART feeds the checker: descending support,
/// support-< k terms dropped (they go straight to the term chunk).
fn candidate_order(records: &[Record]) -> Vec<TermId> {
    let supports = SupportMap::from_records(records.iter());
    supports
        .terms_by_descending_support()
        .into_iter()
        .filter(|&t| supports.support(t) as usize >= K)
        .collect()
}

/// The operations the greedy replay needs from either engine, so both
/// passes run the exact same loop (apples-to-apples speedup).
trait GreedyChecker {
    fn can_add(&mut self, t: TermId) -> bool;
    fn add(&mut self, t: TermId);
    fn reset(&mut self);
}

impl GreedyChecker for IncrementalChecker<'_> {
    fn can_add(&mut self, t: TermId) -> bool {
        IncrementalChecker::can_add(self, t)
    }
    fn add(&mut self, t: TermId) {
        IncrementalChecker::add(self, t)
    }
    fn reset(&mut self) {
        IncrementalChecker::reset(self)
    }
}

impl GreedyChecker for ReferenceChecker<'_> {
    fn can_add(&mut self, t: TermId) -> bool {
        ReferenceChecker::can_add(self, t)
    }
    fn add(&mut self, t: TermId) {
        ReferenceChecker::add(self, t)
    }
    fn reset(&mut self) {
        ReferenceChecker::reset(self)
    }
}

/// VERPART's greedy domain construction (chunk rounds until no candidate is
/// accepted); returns the total number of accepted terms so the two engine
/// passes can be cross-checked against each other.
fn greedy_domains<C: GreedyChecker>(mut checker: C, candidates: &[TermId]) -> usize {
    let mut remaining = candidates.to_vec();
    let mut accepted_total = 0usize;
    while !remaining.is_empty() {
        checker.reset();
        let mut rejected = Vec::new();
        let mut accepted = 0usize;
        for &t in &remaining {
            if checker.can_add(t) {
                checker.add(t);
                accepted += 1;
            } else {
                rejected.push(t);
            }
        }
        if accepted == 0 {
            break;
        }
        accepted_total += accepted;
        remaining = rejected;
    }
    accepted_total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_produces_all_series_and_matching_engines() {
        let report = bench_core(500);
        assert_eq!(report.id, "BENCH_core");
        let names: Vec<&str> = report.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "verpart_ubench",
                "refine_ubench",
                "end_to_end",
                "obs_overhead",
                "counters"
            ]
        );
        let overhead = &report.series[3];
        assert!(overhead.points.iter().any(|(x, _)| x == "disabled_inc_ns"));
        assert!(overhead.points.iter().any(|(x, _)| x == "delta_ns"));
        let counters = &report.series[4];
        assert!(
            counters
                .points
                .iter()
                .any(|(x, v)| x == "core.join_attempts" && *v > 0.0),
            "the obs-enabled rerun must record join attempts"
        );
        let ubench = &report.series[0];
        assert!(ubench.points.iter().any(|(x, _)| x == "legacy_s"));
        assert!(ubench.points.iter().any(|(x, _)| x == "dense_s"));
        assert!(ubench.points.iter().any(|(x, _)| x == "speedup"));
        let refine = &report.series[1];
        assert!(refine.points.iter().any(|(x, _)| x == "reference_s"));
        assert!(refine.points.iter().any(|(x, _)| x == "indexed_s"));
        assert!(refine.points.iter().any(|(x, _)| x == "speedup"));
        assert!(refine.points.iter().any(|(x, _)| x == "passes"));
    }
}
