//! One function per table/figure of the paper's evaluation.
//!
//! Every function takes a `scale` divisor (1 = the paper's full workload
//! size) and returns an [`ExperimentReport`]; the binaries in `src/bin/` are
//! thin wrappers that parse `--scale` and call these functions, so the whole
//! evaluation is also reachable programmatically (and testable).

use crate::experiment::{ExperimentReport, Series};
use crate::workloads::{quest_scaled, real_one_scaled, real_scaled};
use baselines::{AprioriAnonymizer, AprioriConfig, DiffPart, DiffPartConfig};
use datagen::RealDataset;
use disassociation::{reconstruct, reconstruct_many, DisassociationConfig, Disassociator};
use hierarchy::Taxonomy;
use metrics::{
    pair_window, relative_error_averaged, relative_error_chunks, relative_error_datasets,
    tkd_datasets, tkd_ml2, InformationLoss, LossConfig, TkdConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use transact::{Dataset, DatasetStats};

/// The paper's default privacy parameters (Section 7.1).
pub const PAPER_K: usize = 5;
/// The paper's default adversary knowledge bound.
pub const PAPER_M: usize = 2;

fn anonymize(dataset: &Dataset, k: usize, m: usize) -> disassociation::DisassociationOutput {
    Disassociator::try_new(DisassociationConfig {
        k,
        m,
        ..Default::default()
    })
    .expect("valid disassociation configuration")
    .anonymize(dataset)
}

/// A tKd/loss configuration that scales the top-K with the workload so that
/// heavily scaled-down runs still have enough frequent itemsets to compare.
fn loss_config(dataset: &Dataset) -> LossConfig {
    let top_k = (dataset.len() / 25).clamp(50, 1000);
    LossConfig {
        tkd: TkdConfig { top_k, max_len: 3 },
        re_window: re_window_for(dataset),
        ..Default::default()
    }
}

/// The paper traces re on the 200th–220th most frequent terms; scaled-down
/// datasets may not have that many terms with meaningful support, so the
/// window shrinks towards the head of the distribution when needed.
fn re_window_for(dataset: &Dataset) -> std::ops::Range<usize> {
    let domain = dataset.domain_size();
    if domain > 240 {
        200..220
    } else if domain > 60 {
        40..60
    } else {
        0..20.min(domain)
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — dataset statistics table
// ---------------------------------------------------------------------------

/// Figure 6: the statistics of the (simulated) POS, WV1 and WV2 datasets.
pub fn fig06(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig06",
        "Experimental datasets (|D|, |T|, max/avg record size)",
        "POS / WV1 / WV2 statistical profiles",
        scale,
    );
    let mut records = Series::new("|D|");
    let mut domain = Series::new("|T|");
    let mut max_len = Series::new("max rec.");
    let mut avg_len = Series::new("avg rec.");
    for w in real_scaled(scale) {
        let stats = DatasetStats::compute(&w.dataset);
        records.push(&w.name, stats.num_records as f64);
        domain.push(&w.name, stats.domain_size as f64);
        max_len.push(&w.name, stats.max_record_len as f64);
        avg_len.push(&w.name, stats.avg_record_len);
    }
    report.add_series(records);
    report.add_series(domain);
    report.add_series(max_len);
    report.add_series(avg_len);
    report
}

// ---------------------------------------------------------------------------
// Figure 7 — information loss on real data
// ---------------------------------------------------------------------------

/// Figure 7a: tKd-a, tKd, re-a, re and tlost on the three real datasets
/// (k = 5, m = 2).
pub fn fig07a(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig07a",
        "Information loss on real data (k=5, m=2)",
        "POS, WV1, WV2; k=5, m=2",
        scale,
    );
    let mut tkd_a = Series::new("tKd-a");
    let mut tkd = Series::new("tKd");
    let mut re_a = Series::new("re-a");
    let mut re = Series::new("re");
    let mut tlost = Series::new("tlost");
    for w in real_scaled(scale) {
        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        let loss = InformationLoss::evaluate(&w.dataset, &output, &loss_config(&w.dataset));
        tkd_a.push(&w.name, loss.tkd_a);
        tkd.push(&w.name, loss.tkd);
        re_a.push(&w.name, loss.re_a);
        re.push(&w.name, loss.re);
        tlost.push(&w.name, loss.tlost);
    }
    for s in [tkd_a, tkd, re_a, re, tlost] {
        report.add_series(s);
    }
    report
}

/// The k values swept by Figures 7b, 7c and 9b (the paper uses 4…20).
pub fn k_sweep() -> Vec<usize> {
    vec![4, 8, 12, 16, 20]
}

/// Figure 7b: tKd-a and tKd versus k on POS.
pub fn fig07b(scale: usize) -> ExperimentReport {
    let w = real_one_scaled(RealDataset::Pos, scale);
    let mut report = ExperimentReport::new(
        "fig07b",
        "tKd-a / tKd vs k (POS)",
        "POS profile; m=2; k in 4..20",
        scale,
    );
    let mut tkd_a = Series::new("tKd-a");
    let mut tkd = Series::new("tKd");
    for k in k_sweep() {
        let output = anonymize(&w.dataset, k, PAPER_M);
        let loss = InformationLoss::evaluate(&w.dataset, &output, &loss_config(&w.dataset));
        tkd_a.push(k, loss.tkd_a);
        tkd.push(k, loss.tkd);
    }
    report.add_series(tkd_a);
    report.add_series(tkd);
    report
}

/// Figure 7c: re-a, re and tlost versus k on POS.
pub fn fig07c(scale: usize) -> ExperimentReport {
    let w = real_one_scaled(RealDataset::Pos, scale);
    let mut report = ExperimentReport::new(
        "fig07c",
        "re-a / re / tlost vs k (POS)",
        "POS profile; m=2; k in 4..20",
        scale,
    );
    let mut re_a = Series::new("re-a");
    let mut re = Series::new("re");
    let mut tlost = Series::new("tlost");
    for k in k_sweep() {
        let output = anonymize(&w.dataset, k, PAPER_M);
        let loss = InformationLoss::evaluate(&w.dataset, &output, &loss_config(&w.dataset));
        re_a.push(k, loss.re_a);
        re.push(k, loss.re);
        tlost.push(k, loss.tlost);
    }
    report.add_series(re_a);
    report.add_series(re);
    report.add_series(tlost);
    report
}

/// Figure 7d: re versus the frequency rank of the traced terms, for the
/// chunk-only supports (re-a) and for supports averaged over 1, 2, 5 and 10
/// reconstructions.
pub fn fig07d(scale: usize) -> ExperimentReport {
    let w = real_one_scaled(RealDataset::Pos, scale);
    let mut report = ExperimentReport::new(
        "fig07d",
        "re vs term frequency range, with multiple reconstructions (POS)",
        "POS profile; k=5, m=2; windows of 20 terms",
        scale,
    );
    let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
    let mut rng = StdRng::seed_from_u64(0xF17D);
    let reconstructions = reconstruct_many(&output.dataset, 10, &mut rng);

    // The paper traces windows starting at ranks 0, 100, 200, 300, 400; clamp
    // to the available domain for scaled-down runs.
    let domain = w.dataset.domain_size();
    let starts: Vec<usize> = [0usize, 100, 200, 300, 400]
        .into_iter()
        .filter(|s| s + 20 <= domain.max(20))
        .collect();
    let mut re_a = Series::new("re-a");
    let mut curves: Vec<(usize, Series)> = vec![
        (1, Series::new("re-1")),
        (2, Series::new("re-2")),
        (5, Series::new("re-5")),
        (10, Series::new("re-10")),
    ];
    for &start in &starts {
        let window = pair_window(&w.dataset, start..start + 20);
        re_a.push(
            start,
            relative_error_chunks(&w.dataset, &output.dataset, &window),
        );
        for (n, series) in curves.iter_mut() {
            series.push(
                start,
                relative_error_averaged(&w.dataset, &reconstructions[..*n], &window),
            );
        }
    }
    report.add_series(re_a);
    for (_, s) in curves {
        report.add_series(s);
    }
    report
}

// ---------------------------------------------------------------------------
// Figure 8 — information loss on synthetic data
// ---------------------------------------------------------------------------

/// Figure 8a+8b: information loss versus dataset size (1M–10M records in the
/// paper, divided by `scale` here); domain 5k, average record length 10.
pub fn fig08ab(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig08ab",
        "Information loss vs dataset size (synthetic)",
        "Quest; |T|=5000; avg len 10; k=5, m=2; x = millions of records (paper scale)",
        scale,
    );
    let mut tkd_a = Series::new("tKd-a");
    let mut tkd = Series::new("tKd");
    let mut tlost = Series::new("tlost");
    let mut re_a = Series::new("re-a");
    let mut re = Series::new("re");
    for millions in [1usize, 2, 4, 6, 8, 10] {
        let records = millions * 1_000_000 / scale.max(1);
        let w = quest_scaled(records, 5_000, 10.0, 0x8A + millions as u64);
        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        let loss = InformationLoss::evaluate(&w.dataset, &output, &loss_config(&w.dataset));
        let x = format!("{millions}M");
        tkd_a.push(&x, loss.tkd_a);
        tkd.push(&x, loss.tkd);
        tlost.push(&x, loss.tlost);
        re_a.push(&x, loss.re_a);
        re.push(&x, loss.re);
    }
    for s in [tkd_a, tkd, tlost, re_a, re] {
        report.add_series(s);
    }
    report
}

/// Figure 8c: information loss versus domain size (2k–10k terms).
pub fn fig08c(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig08c",
        "Information loss vs domain size (synthetic)",
        "Quest; 1M records (scaled); avg len 10; k=5, m=2",
        scale,
    );
    let records = 1_000_000 / scale.max(1);
    let mut tlost = Series::new("tlost");
    let mut re = Series::new("re");
    let mut tkd_a = Series::new("tKd-a");
    let mut tkd = Series::new("tKd");
    for domain in [2_000usize, 4_000, 6_000, 8_000, 10_000] {
        let w = quest_scaled(records, domain, 10.0, 0x8C + domain as u64);
        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        let loss = InformationLoss::evaluate(&w.dataset, &output, &loss_config(&w.dataset));
        let x = format!("{}k", domain / 1000);
        tlost.push(&x, loss.tlost);
        re.push(&x, loss.re);
        tkd_a.push(&x, loss.tkd_a);
        tkd.push(&x, loss.tkd);
    }
    for s in [tlost, re, tkd_a, tkd] {
        report.add_series(s);
    }
    report
}

/// Figure 8d: information loss versus average record length (6–14 items).
pub fn fig08d(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig08d",
        "Information loss vs record length (synthetic)",
        "Quest; 1M records (scaled); |T|=5000; k=5, m=2",
        scale,
    );
    let records = 1_000_000 / scale.max(1);
    let mut tlost = Series::new("tlost");
    let mut re = Series::new("re");
    let mut tkd_a = Series::new("tKd-a");
    let mut tkd = Series::new("tKd");
    for len in [6usize, 8, 10, 12, 14] {
        let w = quest_scaled(records, 5_000, len as f64, 0x8D + len as u64);
        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        let loss = InformationLoss::evaluate(&w.dataset, &output, &loss_config(&w.dataset));
        tlost.push(len, loss.tlost);
        re.push(len, loss.re);
        tkd_a.push(len, loss.tkd_a);
        tkd.push(len, loss.tkd);
    }
    for s in [tlost, re, tkd_a, tkd] {
        report.add_series(s);
    }
    report
}

// ---------------------------------------------------------------------------
// Figures 9 & 10 — anonymization time
// ---------------------------------------------------------------------------

/// Figure 9a: anonymization time on the real datasets.
pub fn fig09a(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig09a",
        "Anonymization time on real data (seconds)",
        "POS, WV1, WV2; k=5, m=2",
        scale,
    );
    let mut time = Series::new("seconds");
    let mut horizontal = Series::new("horpart");
    let mut vertical = Series::new("verpart");
    let mut refining = Series::new("refine");
    for w in real_scaled(scale) {
        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        time.push(&w.name, output.total_seconds());
        horizontal.push(&w.name, output.phases.horpart);
        vertical.push(&w.name, output.phases.verpart);
        refining.push(&w.name, output.phases.refine);
    }
    report.add_series(time);
    report.add_series(horizontal);
    report.add_series(vertical);
    report.add_series(refining);
    report
}

/// Figure 9b: anonymization time versus k on POS.
pub fn fig09b(scale: usize) -> ExperimentReport {
    let w = real_one_scaled(RealDataset::Pos, scale);
    let mut report = ExperimentReport::new(
        "fig09b",
        "Anonymization time vs k (POS, seconds)",
        "POS profile; m=2",
        scale,
    );
    let mut time = Series::new("seconds");
    for k in k_sweep() {
        let output = anonymize(&w.dataset, k, PAPER_M);
        time.push(k, output.total_seconds());
    }
    report.add_series(time);
    report
}

/// Figure 10a: anonymization time versus dataset size (synthetic).
pub fn fig10a(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig10a",
        "Anonymization time vs dataset size (synthetic, seconds)",
        "Quest; |T|=5000; avg len 10; k=5, m=2",
        scale,
    );
    let mut time = Series::new("seconds");
    for millions in [1usize, 2, 4, 6, 8, 10] {
        let records = millions * 1_000_000 / scale.max(1);
        let w = quest_scaled(records, 5_000, 10.0, 0x10A + millions as u64);
        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        time.push(format!("{millions}M"), output.total_seconds());
    }
    report.add_series(time);
    report
}

/// Figure 10b: anonymization time versus domain size (synthetic).
pub fn fig10b(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig10b",
        "Anonymization time vs domain size (synthetic, seconds)",
        "Quest; 1M records (scaled); avg len 10; k=5, m=2",
        scale,
    );
    let records = 1_000_000 / scale.max(1);
    let mut time = Series::new("seconds");
    for domain in [2_000usize, 4_000, 6_000, 8_000, 10_000] {
        let w = quest_scaled(records, domain, 10.0, 0x10B + domain as u64);
        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        time.push(format!("{}k", domain / 1000), output.total_seconds());
    }
    report.add_series(time);
    report
}

// ---------------------------------------------------------------------------
// Figure 11 — comparison against the baselines
// ---------------------------------------------------------------------------

/// Figure 11a: tKd — disassociation versus DiffPart on the real datasets.
pub fn fig11a(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig11a",
        "tKd: disassociation vs DiffPart",
        "POS, WV1, WV2; k=5, m=2; DiffPart best budget in 0.5..1.25",
        scale,
    );
    let mut dis = Series::new("Disassociation");
    let mut dp = Series::new("DiffPart");
    for w in real_scaled(scale) {
        let cfg = loss_config(&w.dataset);
        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        let mut rng = StdRng::seed_from_u64(0x11A);
        let reconstruction = reconstruct(&output.dataset, &mut rng);
        dis.push(&w.name, tkd_datasets(&w.dataset, &reconstruction, &cfg.tkd));

        let taxonomy = taxonomy_for(&w.dataset);
        let best = best_diffpart(&w.dataset, &taxonomy, &cfg.tkd);
        dp.push(&w.name, best);
    }
    report.add_series(dis);
    report.add_series(dp);
    report
}

/// Figure 11b: tKd-ML2 — disassociation versus Apriori generalization.
pub fn fig11b(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig11b",
        "tKd-ML2: disassociation vs Apriori generalization",
        "POS, WV1, WV2; k=5, m=2; balanced fanout-4 taxonomy",
        scale,
    );
    let mut dis = Series::new("Disassociation");
    let mut apriori = Series::new("Apriori");
    for w in real_scaled(scale) {
        let cfg = loss_config(&w.dataset);
        let taxonomy = taxonomy_for(&w.dataset);

        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        let mut rng = StdRng::seed_from_u64(0x11B);
        let reconstruction = reconstruct(&output.dataset, &mut rng);
        let recon_leaf: Vec<Vec<u32>> = reconstruction
            .records()
            .iter()
            .map(|r| r.iter().map(|t| t.raw()).collect())
            .collect();
        dis.push(
            &w.name,
            tkd_ml2(&w.dataset, &recon_leaf, &taxonomy, &cfg.tkd),
        );

        let result = AprioriAnonymizer::new(
            &taxonomy,
            AprioriConfig {
                k: PAPER_K,
                m: PAPER_M,
                ..Default::default()
            },
        )
        .anonymize(&w.dataset);
        apriori.push(
            &w.name,
            tkd_ml2(&w.dataset, &result.generalized_records, &taxonomy, &cfg.tkd),
        );
    }
    report.add_series(dis);
    report.add_series(apriori);
    report
}

/// Figure 11c: re — disassociation versus DiffPart versus Apriori.
///
/// As in the paper, the traced pairs come from the most frequent terms
/// (DiffPart suppresses the 200th–220th most frequent terms entirely), and
/// the Apriori supports are obtained by uniformly dividing each generalized
/// node's support over the leaves it covers.
pub fn fig11c(scale: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig11c",
        "re: disassociation vs DiffPart vs Apriori",
        "POS, WV1, WV2; k=5, m=2; pairs of the 0..20 most frequent terms",
        scale,
    );
    let mut dis = Series::new("Disassociation");
    let mut dp = Series::new("DiffPart");
    let mut apriori = Series::new("Apriori");
    for w in real_scaled(scale) {
        let window = pair_window(&w.dataset, 0..20);
        let taxonomy = taxonomy_for(&w.dataset);

        let output = anonymize(&w.dataset, PAPER_K, PAPER_M);
        let mut rng = StdRng::seed_from_u64(0x11C);
        let reconstruction = reconstruct(&output.dataset, &mut rng);
        dis.push(
            &w.name,
            relative_error_datasets(&w.dataset, &reconstruction, &window),
        );

        let diff = DiffPart::new(&taxonomy, DiffPartConfig::paper_best()).sanitize(&w.dataset);
        dp.push(
            &w.name,
            relative_error_datasets(&w.dataset, &diff.dataset, &window),
        );

        let result = AprioriAnonymizer::new(
            &taxonomy,
            AprioriConfig {
                k: PAPER_K,
                m: PAPER_M,
                ..Default::default()
            },
        )
        .anonymize(&w.dataset);
        apriori.push(
            &w.name,
            apriori_pair_re(&w.dataset, &result, &taxonomy, &window),
        );
    }
    report.add_series(dis);
    report.add_series(dp);
    report.add_series(apriori);
    report
}

/// Builds the balanced taxonomy used by the generalization-based methods.
fn taxonomy_for(dataset: &Dataset) -> Taxonomy {
    let leaves = dataset
        .domain()
        .last()
        .map(|t| t.index() + 1)
        .unwrap_or(1)
        .max(2);
    Taxonomy::balanced(leaves, 4)
}

/// Runs DiffPart over the budget sweep of the paper (0.5–1.25) and reports
/// the best (lowest) tKd it achieves.
fn best_diffpart(dataset: &Dataset, taxonomy: &Taxonomy, cfg: &TkdConfig) -> f64 {
    let mut best = f64::INFINITY;
    for (i, epsilon) in [0.5f64, 0.75, 1.0, 1.25].into_iter().enumerate() {
        let result = DiffPart::new(
            taxonomy,
            DiffPartConfig {
                epsilon,
                seed: 0xD1FF + i as u64,
                ..Default::default()
            },
        )
        .sanitize(dataset);
        let value = tkd_datasets(dataset, &result.dataset, cfg);
        best = best.min(value);
    }
    best
}

/// Pair-support relative error for the Apriori output: each generalized
/// node's support is divided uniformly over its leaves, and a pair's
/// estimated support is the product-free minimum of its members' estimates
/// when the two terms are generalized to different nodes, or the node support
/// scaled by the pair-inclusion probability when they share a node.
fn apriori_pair_re(
    original: &Dataset,
    result: &baselines::AprioriResult,
    taxonomy: &Taxonomy,
    window: &[transact::TermId],
) -> f64 {
    use std::collections::HashMap;
    // Generalized pair supports.
    let mapping: HashMap<transact::TermId, hierarchy::NodeId> =
        result.mapping.iter().copied().collect();
    let mut pair_counts: HashMap<(u32, u32), u64> = HashMap::new();
    for record in &result.generalized_records {
        for i in 0..record.len() {
            for j in (i + 1)..record.len() {
                let key = (record[i].min(record[j]), record[i].max(record[j]));
                *pair_counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    let mut node_counts: HashMap<u32, u64> = HashMap::new();
    for record in &result.generalized_records {
        for &n in record {
            *node_counts.entry(n).or_insert(0) += 1;
        }
    }
    let so = transact::PairSupports::from_records(original.records(), Some(window));
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..window.len() {
        for j in (i + 1)..window.len() {
            let (a, b) = (window[i], window[j]);
            let (na, nb) = match (mapping.get(&a), mapping.get(&b)) {
                (Some(x), Some(y)) => (*x, *y),
                _ => continue,
            };
            let estimated = if na == nb {
                // Both terms map to the same node: divide its support by the
                // number of unordered leaf pairs under it.
                let leaves = taxonomy.leaf_count(na).max(2) as f64;
                let pairs = leaves * (leaves - 1.0) / 2.0;
                node_counts.get(&na.0).copied().unwrap_or(0) as f64 / pairs.max(1.0)
            } else {
                let key = (na.0.min(nb.0), na.0.max(nb.0));
                let generalized = pair_counts.get(&key).copied().unwrap_or(0) as f64;
                let la = taxonomy.leaf_count(na).max(1) as f64;
                let lb = taxonomy.leaf_count(nb).max(1) as f64;
                generalized / (la * lb)
            };
            let so_ab = so.support(a, b) as f64;
            if so_ab == 0.0 && estimated == 0.0 {
                continue;
            }
            total += (so_ab - estimated).abs() / ((so_ab + estimated) / 2.0);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The figure functions are exercised at very coarse scales so the whole
    // test-suite stays fast; the goal is to pin the report structure (ids,
    // series names, value ranges), not the numbers.

    #[test]
    fn fig06_reports_four_series_for_three_datasets() {
        let report = fig06(2000);
        assert_eq!(report.id, "fig06");
        assert_eq!(report.series.len(), 4);
        assert!(report.series.iter().all(|s| s.points.len() == 3));
    }

    #[test]
    fn fig07a_metrics_are_in_range() {
        let report = fig07a(2000);
        assert_eq!(report.series.len(), 5);
        for s in &report.series {
            for (_, v) in &s.points {
                assert!((0.0..=2.0).contains(v), "{}: {v}", s.name);
            }
        }
    }

    #[test]
    fn fig09a_times_are_positive() {
        let report = fig09a(2000);
        let total = &report.series[0];
        assert!(total.points.iter().all(|(_, v)| *v >= 0.0));
    }

    #[test]
    fn fig11a_diffpart_loses_more_than_disassociation() {
        let report = fig11a(2000);
        let dis = &report.series[0];
        let dp = &report.series[1];
        // The headline claim of Figure 11a: disassociation preserves the top
        // itemsets far better than DiffPart.  Allow equality on tiny scaled
        // inputs but require it on at least one dataset.
        let some_strictly_better = dis
            .points
            .iter()
            .zip(&dp.points)
            .any(|((_, d), (_, p))| d < p);
        assert!(some_strictly_better, "dis: {dis:?}, dp: {dp:?}");
    }

    #[test]
    fn taxonomy_for_covers_the_domain() {
        let w = quest_scaled(100, 50, 5.0, 1);
        let tax = taxonomy_for(&w.dataset);
        assert!(tax.num_leaves() > w.dataset.domain().last().unwrap().index());
    }
}
