//! Process-level tests of `disassoc serve`: the crash-safety contract of
//! the store (PR 2) verified through the daemon — SIGTERM under load drains
//! and exits 0 with every acknowledged ingest intact, and kill -9
//! mid-ingest leaves a store that reopens cleanly via WAL recovery.
//!
//! These need the real binary (signals target a process), so they live in
//! the CLI package where Cargo exports `CARGO_BIN_EXE_disassoc`.

#![cfg(unix)]

use disassoc_serve::client;
use disassoc_store::{Store, StoreConfig};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "disassoc_serve_daemon_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts the daemon on an ephemeral port and parses the bound address off
/// its first stdout line (`listening on ADDR (…)`).
fn spawn_daemon(data_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_disassoc"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--read-timeout-ms",
            "2000",
            "--write-timeout-ms",
            "2000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning the daemon");
    let stdout = child.stdout.as_mut().expect("stdout is piped");
    let mut first_line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("reading the listening line");
    let addr = first_line
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|token| token.parse().ok())
        .unwrap_or_else(|| panic!("unexpected first line {first_line:?}"));
    (child, addr)
}

/// POSTs `records_per_batch`-record batches in a loop until `stop` is
/// raised or the daemon goes away; returns the number of *acknowledged*
/// batches (a 200 means the records are WAL-durable).
fn ingest_until_stopped(
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acked: Arc<AtomicUsize>,
    records_per_batch: usize,
) {
    let mut batch_index = 0usize;
    while !stop.load(Ordering::Acquire) {
        let mut body = String::new();
        for i in 0..records_per_batch {
            let base = (batch_index * records_per_batch + i) as u32;
            body.push_str(&format!(
                "{} {} {}\n",
                base % 97,
                base % 89 + 100,
                base % 83 + 200
            ));
        }
        match client::post(addr, "/datasets/d/records", body.as_bytes()) {
            Ok(resp) if resp.status == 200 => {
                acked.fetch_add(1, Ordering::AcqRel);
                batch_index += 1;
            }
            // 4xx/5xx or transport error: the daemon is shutting down (or
            // gone) — every previously acknowledged batch still counts.
            _ => break,
        }
    }
}

fn wait_for_exit(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            panic!("daemon did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn reopened_record_count(data_dir: &Path) -> u64 {
    let store = Store::open(data_dir.join("d/store"), StoreConfig::default())
        .expect("store reopens cleanly after the daemon is gone");
    store.len()
}

#[test]
fn sigterm_under_load_exits_cleanly_with_acknowledged_ingests_intact() {
    const BATCH: usize = 20;
    let data_dir = tmpdir("sigterm");
    let (mut child, addr) = spawn_daemon(&data_dir);

    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicUsize::new(0));
    let ingester = {
        let (stop, acked) = (Arc::clone(&stop), Arc::clone(&acked));
        std::thread::spawn(move || ingest_until_stopped(addr, stop, acked, BATCH))
    };

    // Let some load through, then SIGTERM mid-stream.
    while acked.load(Ordering::Acquire) < 5 {
        std::thread::sleep(Duration::from_millis(10));
    }
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("sending SIGTERM");
    assert!(kill.success());

    let status = wait_for_exit(&mut child, Duration::from_secs(30));
    stop.store(true, Ordering::Release);
    ingester.join().unwrap();
    assert!(
        status.success(),
        "graceful shutdown must exit 0, got {status:?}"
    );

    // Drain printed its goodbye (the listening line was already consumed).
    let mut rest = String::new();
    std::io::Read::read_to_string(child.stdout.as_mut().unwrap(), &mut rest).unwrap();
    assert!(
        rest.contains("drained and shut down cleanly"),
        "stdout tail: {rest:?}"
    );

    // Every acknowledged batch survived; the lock was released.
    let acked_records = (acked.load(Ordering::Acquire) * BATCH) as u64;
    let stored = reopened_record_count(&data_dir);
    assert!(
        stored >= acked_records,
        "store holds {stored} records but {acked_records} were acknowledged"
    );
}

#[test]
fn kill_dash_nine_mid_ingest_leaves_a_cleanly_reopenable_store() {
    const BATCH: usize = 20;
    let data_dir = tmpdir("kill9");
    let (mut child, addr) = spawn_daemon(&data_dir);

    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicUsize::new(0));
    let ingester = {
        let (stop, acked) = (Arc::clone(&stop), Arc::clone(&acked));
        std::thread::spawn(move || ingest_until_stopped(addr, stop, acked, BATCH))
    };

    while acked.load(Ordering::Acquire) < 5 {
        std::thread::sleep(Duration::from_millis(10));
    }
    // SIGKILL: no drain, no flush, no lock release — the WAL is all there is.
    child.kill().expect("SIGKILL");
    let _ = child.wait();
    stop.store(true, Ordering::Release);
    ingester.join().unwrap();

    // Recovery: the store must reopen (stale LOCK from a dead process is
    // reclaimed, the WAL tail replayed) holding at least every acknowledged
    // record.
    let acked_records = (acked.load(Ordering::Acquire) * BATCH) as u64;
    let stored = reopened_record_count(&data_dir);
    assert!(
        stored >= acked_records,
        "store holds {stored} records but {acked_records} were acknowledged before kill -9"
    );
}
