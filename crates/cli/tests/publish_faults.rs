//! Process-level tests of the CLI's flat-file publication seam: armed via
//! the `DISASSOC_FAULTS` environment, `disassoc anonymize --out` must hit
//! the `cli.publish.*` failpoints in a real process, and a publication that
//! crashes at the rename commit point must leave the previous publication
//! byte-for-byte intact (old-or-new, never a mix).
//!
//! These complement the in-tree matrix in `tests/torture_store.rs` (which
//! exercises `publish::commit_flat_file` directly): here the whole binary
//! runs, so the seam wiring from `Command::run` down to the rename is what
//! is under test.

use std::path::{Path, PathBuf};
use std::process::Command;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "disassoc_publish_faults_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_input(dir: &Path) -> PathBuf {
    let input = dir.join("input.txt");
    let status = Command::new(env!("CARGO_BIN_EXE_disassoc"))
        .args([
            "generate",
            "--kind",
            "quest",
            "--records",
            "200",
            "--seed",
            "7",
            "--out",
            input.to_str().unwrap(),
        ])
        .status()
        .expect("running generate");
    assert!(status.success(), "generate must succeed");
    input
}

fn anonymize(input: &Path, out_prefix: &Path, faults: Option<&str>) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_disassoc"));
    cmd.args([
        "anonymize",
        "--input",
        input.to_str().unwrap(),
        "--k",
        "3",
        "--m",
        "2",
        "--out-prefix",
        out_prefix.to_str().unwrap(),
    ]);
    match faults {
        Some(spec) => cmd.env(disassoc_faults::ENV_VAR, spec),
        None => cmd.env_remove(disassoc_faults::ENV_VAR),
    };
    cmd.output().expect("running anonymize")
}

#[test]
fn a_crashed_rename_commit_preserves_the_previous_publication() {
    let dir = tmpdir("rename_crash");
    let input = generate_input(&dir);
    let out_prefix = dir.join("pub");
    let chunks = dir.join("pub.chunks.json");
    let partial = dir.join("pub.chunks.json.partial");

    // Generation 1, unarmed: a committed publication.
    let ok = anonymize(&input, &out_prefix, None);
    assert!(ok.status.success(), "baseline publication must succeed");
    let old_bytes = std::fs::read(&chunks).unwrap();
    assert!(!old_bytes.is_empty());

    // Generation 2 crashes at the rename commit point.  The old
    // publication must survive byte-for-byte and no stray partial may be
    // left behind looking like output.
    for spec in ["cli.publish.rename=error", "cli.publish.sync=error"] {
        let crashed = anonymize(&input, &out_prefix, Some(spec));
        assert!(
            !crashed.status.success(),
            "{spec}: injected failure must fail the run"
        );
        assert_eq!(
            std::fs::read(&chunks).unwrap(),
            old_bytes,
            "{spec}: previous publication must survive a crashed commit"
        );
        assert!(
            !partial.exists(),
            "{spec}: failed runs must not leave a partial file"
        );
    }

    // A retry with nothing armed replaces the publication atomically.
    let retried = anonymize(&input, &out_prefix, None);
    assert!(retried.status.success(), "retry must succeed");
    assert_eq!(
        std::fs::read(&chunks).unwrap(),
        old_bytes,
        "same input and seed must republish identical bytes"
    );
    assert!(!partial.exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_bad_fault_spec_is_a_usage_error() {
    let dir = tmpdir("bad_spec");
    let input = generate_input(&dir);
    let out = anonymize(&input, &dir.join("pub"), Some("cli.publish.rename=bogus"));
    assert_eq!(
        out.status.code(),
        Some(2),
        "unparseable fault specs are usage errors"
    );
    std::fs::remove_dir_all(&dir).ok();
}
