//! `disassoc` — the command-line entry point (see the library crate for the
//! command implementations).

use disassoc_cli::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = command.run(&mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
