//! `disassoc` — the command-line entry point (see the library crate for the
//! command implementations).
//!
//! Exit status follows the usual Unix convention: `2` for usage errors (bad
//! flags, invalid privacy parameters), `1` for runtime failures (I/O,
//! corrupt store, failed pipeline).  Runtime failures print their full
//! typed-error cause chain as `caused by:` lines.

use disassoc_cli::{CliError, Command};

fn fail(error: &CliError) -> ! {
    eprintln!("error: {}", error.render_chain());
    std::process::exit(error.exit_code());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(&args) {
        Ok(c) => c,
        Err(e) => fail(&e),
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = command.run(&mut stdout) {
        fail(&e);
    }
}
