//! # disassoc-cli — command-line front end
//!
//! A small, dependency-free command-line interface around the
//! [`disassociation`] library so the anonymizer can be used on plain
//! transaction files without writing Rust:
//!
//! ```text
//! disassoc generate  --kind quest --records 10000 --domain 1000 --out data.dat
//! disassoc stats     --input data.dat
//! disassoc anonymize --input data.dat --k 5 --m 2 --out-prefix published
//! disassoc reconstruct --chunks published.chunks.json --out sample.dat
//! disassoc evaluate  --input data.dat --k 5 --m 2
//! ```
//!
//! Every anonymization arm routes through the unified
//! [`disassociation::pipeline::Pipeline`] API — a [`RecordSource`] per input
//! kind (file, store, in-memory), a [`ChunkSink`] per output, `--threads N`
//! for parallel batch execution — and errors stay typed end to end:
//! [`CliError`] preserves the cause chain, usage errors exit with status 2,
//! runtime (I/O, store, pipeline) errors with status 1.
//!
//! The argument parser is hand-rolled (the offline crate set has no CLI
//! parser); [`Command::parse`] is exercised directly by the unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use datagen::{QuestConfig, QuestGenerator, RealDataset};
use disassoc_obs::trace::Attr;
use disassoc_store::{ChunkDir, Store, StoreConfig};
use disassociation::pipeline::{
    ChunkSink, CollectSink, DatasetSource, JsonChunksSink, Pipeline, ReaderSource, RecordSource,
    RunSummary,
};
use disassociation::{
    reconstruct_many, AppendOptions, ConfigError, DisassociationConfig, DisassociationOutput,
    IncrementalPipeline,
};
use metrics::{InformationLoss, LossConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use transact::{Dataset, DatasetStats, Record};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic dataset.
    Generate {
        /// `quest`, `pos`, `wv1` or `wv2`.
        kind: String,
        /// Number of records (Quest only; profiles use their published size / scale).
        records: usize,
        /// Domain size (Quest only).
        domain: usize,
        /// Average record length (Quest only).
        avg_len: f64,
        /// Down-scaling factor for the real-dataset profiles.
        scale: usize,
        /// RNG seed.
        seed: u64,
        /// Output path.
        out: PathBuf,
    },
    /// Print the Figure 6 statistics of a dataset.
    Stats {
        /// Input transaction file.
        input: PathBuf,
    },
    /// Anonymize a dataset by disassociation.
    Anonymize {
        /// Input transaction file (`None` when reading from a store).
        input: Option<PathBuf>,
        /// Store directory to read from instead of a file.
        store: Option<PathBuf>,
        /// Records per streaming batch (0 = one batch for file input, the
        /// default batch size for store input).
        batch_size: usize,
        /// Privacy parameter k.
        k: usize,
        /// Privacy parameter m.
        m: usize,
        /// Maximum cluster size (0 = default).
        max_cluster_size: usize,
        /// Disable the refining step.
        no_refine: bool,
        /// Batches anonymized concurrently (1 = serial, 0 = one per core).
        threads: usize,
        /// Output prefix (writes `<prefix>.chunks.json`).
        out_prefix: PathBuf,
        /// Observability: metrics snapshot / trace / profile summary.
        obs: ObsOptions,
    },
    /// Incrementally append new records to an already-ingested store,
    /// re-anonymizing only the clusters they land in.
    Append {
        /// Transaction file holding the records to append.
        input: PathBuf,
        /// Store directory holding the base dataset (must exist).
        store: PathBuf,
        /// Records per streaming batch (0 = the default store batch size).
        batch_size: usize,
        /// Privacy parameter k.
        k: usize,
        /// Privacy parameter m.
        m: usize,
        /// Maximum cluster size (0 = default).
        max_cluster_size: usize,
        /// Disable the refining step.
        no_refine: bool,
        /// Cap on the fraction of existing clusters the append may dirty.
        max_dirty_fraction: f64,
        /// Chunk directory to (re)publish only the dirty batches into.
        publish: Option<PathBuf>,
        /// Also write the combined publication as `<prefix>.chunks.json`.
        out_prefix: Option<PathBuf>,
        /// Observability: metrics snapshot / trace / profile summary.
        obs: ObsOptions,
    },
    /// Stream a transaction file into a persistent record store.
    Ingest {
        /// Input transaction file.
        input: PathBuf,
        /// Store directory (created if absent).
        store: PathBuf,
        /// Records appended per WAL batch.
        batch_size: usize,
        /// Memtable capacity in records (spill threshold).
        memtable: usize,
        /// Run a compaction pass after ingesting.
        compact: bool,
        /// Observability: metrics snapshot / trace / profile summary.
        obs: ObsOptions,
    },
    /// Print the state of a persistent record store.
    StoreInfo {
        /// Store directory.
        store: PathBuf,
    },
    /// Sample reconstructions from a published chunk file.
    Reconstruct {
        /// The `.chunks.json` file produced by `anonymize`.
        chunks: PathBuf,
        /// Output path (suffix `.N` added when more than one sample).
        out: PathBuf,
        /// Number of reconstructions.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Anonymize and report the information-loss metrics.
    Evaluate {
        /// Input transaction file (`None` when reading from a store).
        input: Option<PathBuf>,
        /// Store directory to read from instead of a file.
        store: Option<PathBuf>,
        /// Records per streaming batch (same semantics as `anonymize`).
        batch_size: usize,
        /// Privacy parameter k.
        k: usize,
        /// Privacy parameter m.
        m: usize,
        /// Batches anonymized concurrently (1 = serial, 0 = one per core).
        threads: usize,
        /// Observability: metrics snapshot / trace / profile summary.
        obs: ObsOptions,
    },
    /// Run the anonymization service daemon.
    Serve {
        /// Listen address, e.g. `127.0.0.1:7070` (`:0` for an ephemeral port).
        listen: String,
        /// Service data directory (one subdirectory per dataset).
        data_dir: PathBuf,
        /// Worker threads executing anonymize/append jobs.
        workers: usize,
        /// Per-dataset bound on queued/running jobs (503 beyond it).
        queue_depth: usize,
        /// Pipeline batch size for served anonymizations (0 = default).
        batch_size: usize,
        /// Concurrent connections before new ones are rejected.
        max_connections: usize,
        /// Largest request body a client may send, bytes.
        max_body_bytes: u64,
        /// Socket read timeout, milliseconds.
        read_timeout_ms: u64,
        /// Socket write timeout, milliseconds.
        write_timeout_ms: u64,
        /// Per-job wall-clock timeout, milliseconds (504 past it).
        job_timeout_ms: u64,
        /// Stream a JSONL trace of the daemon's spans/events here.
        trace: Option<PathBuf>,
    },
    /// Print usage information.
    Help,
}

/// The shared observability flags of `anonymize`/`append`/`ingest`:
/// `--metrics-out FILE` (JSON counter snapshot), `--trace FILE` (JSONL
/// span/event trace) and `--profile` (human-readable summary on stdout).
/// All default to off, leaving the instrumented code on its single-branch
/// disabled path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsOptions {
    /// Write a JSON metrics snapshot here after the run.
    pub metrics_out: Option<PathBuf>,
    /// Stream a JSONL trace of spans/events here during the run.
    pub trace: Option<PathBuf>,
    /// Print a human-readable counter summary after the run.
    pub profile: bool,
}

impl ObsOptions {
    fn from_flags(flags: &BTreeMap<String, String>) -> ObsOptions {
        ObsOptions {
            metrics_out: flags.get("metrics-out").map(PathBuf::from),
            trace: flags.get("trace").map(PathBuf::from),
            profile: flags.contains_key("profile"),
        }
    }

    /// Whether any observability output was requested.
    pub fn is_active(&self) -> bool {
        self.metrics_out.is_some() || self.trace.is_some() || self.profile
    }

    /// Starts collection: resets the counters, enables the metrics registry
    /// and opens the trace sink.  A no-op session when no flag was given.
    fn start(&self) -> Result<ObsSession, CliError> {
        if !self.is_active() {
            return Ok(ObsSession { options: None });
        }
        if let Some(path) = &self.trace {
            disassoc_obs::trace::init_file(path)?;
        }
        disassoc_obs::metrics::reset_all();
        disassoc_obs::metrics::enable();
        Ok(ObsSession {
            options: Some(self.clone()),
        })
    }
}

/// An active observability collection window; [`ObsSession::finish`] writes
/// the requested outputs and returns the registry to its disabled state.
struct ObsSession {
    options: Option<ObsOptions>,
}

impl ObsSession {
    fn finish(self, out: &mut dyn std::io::Write) -> Result<(), CliError> {
        let Some(options) = self.options else {
            return Ok(());
        };
        disassoc_obs::metrics::disable();
        let snapshot = disassoc_obs::metrics::snapshot();
        if options.trace.is_some() {
            disassoc_obs::trace::shutdown()?;
        }
        if let Some(path) = &options.metrics_out {
            std::fs::write(path, snapshot.to_json())?;
            writeln!(out, "metrics snapshot: {}", path.display())?;
        }
        if let Some(path) = &options.trace {
            writeln!(out, "trace: {}", path.display())?;
        }
        if options.profile {
            write!(out, "{}", snapshot.render_summary())?;
        }
        Ok(())
    }

    /// Tears collection down on an error path without writing any outputs.
    fn abort(self) {
        if self.options.is_some() {
            disassoc_obs::metrics::disable();
            disassoc_obs::trace::shutdown().ok();
        }
    }
}

/// A CLI failure, split by who must act: [`CliError::Usage`] /
/// [`CliError::Config`] mean the command line was wrong (exit status 2),
/// everything else is a runtime failure (exit status 1).
///
/// Causes are preserved — [`std::error::Error::source`] walks from the CLI
/// wrapper down to the original I/O/parse/store error, and `main` prints the
/// whole chain as `caused by:` lines.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments: unknown flag/subcommand, missing value, bad integer.
    Usage(String),
    /// Invalid privacy parameters (`--k`, `--m`).
    Config(ConfigError),
    /// An I/O failure outside the pipeline (writing reports, reading JSON).
    Io(std::io::Error),
    /// A dataset file could not be read or written.
    Transact(transact::TransactError),
    /// The persistent store failed.
    Store(disassoc_store::StoreError),
    /// A chunk file could not be parsed.
    Json(serde_json::Error),
    /// A pipeline run failed (source, sink or configuration).
    Pipeline(disassociation::Error),
}

impl CliError {
    /// The process exit status this error calls for: 2 for usage errors
    /// (bad flags, invalid parameters), 1 for runtime failures.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) | CliError::Config(_) => 2,
            _ => 1,
        }
    }

    /// Renders the error and its full cause chain (`caused by:` lines).
    pub fn render_chain(&self) -> String {
        disassociation::error::render_chain(self)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Config(e) => write!(f, "invalid privacy parameters: {e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Transact(e) => write!(f, "{e}"),
            CliError::Store(e) => write!(f, "{e}"),
            CliError::Json(e) => write!(f, "invalid JSON: {e}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        // Each variant's Display already shows the wrapped error's own line,
        // so the next hop in the chain is that error's cause.
        match self {
            CliError::Usage(_) | CliError::Config(_) | CliError::Json(_) => None,
            CliError::Io(e) => e.source(),
            CliError::Transact(e) => e.source(),
            CliError::Store(e) => e.source(),
            CliError::Pipeline(e) => e.source(),
        }
    }
}

impl From<transact::TransactError> for CliError {
    fn from(e: transact::TransactError) -> Self {
        CliError::Transact(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}
impl From<disassoc_store::StoreError> for CliError {
    fn from(e: disassoc_store::StoreError) -> Self {
        CliError::Store(e)
    }
}
impl From<disassociation::Error> for CliError {
    fn from(e: disassociation::Error) -> Self {
        CliError::Pipeline(e)
    }
}
impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Config(e)
    }
}
impl From<disassociation::SourceError> for CliError {
    fn from(e: disassociation::SourceError) -> Self {
        CliError::Pipeline(disassociation::Error::Source(e))
    }
}
impl From<disassociation::SinkError> for CliError {
    fn from(e: disassociation::SinkError) -> Self {
        CliError::Pipeline(disassociation::Error::Sink(e))
    }
}

/// The usage text printed by `disassoc help`.
pub const USAGE: &str = "disassoc — privacy preservation by disassociation (VLDB 2012)

USAGE:
  disassoc generate   --kind quest|pos|wv1|wv2 [--records N] [--domain N]
                      [--avg-len F] [--scale N] [--seed N] --out FILE
  disassoc stats      --input FILE
  disassoc ingest     --input FILE --store DIR [--batch-size N]
                      [--memtable N] [--compact] [OBS FLAGS]
  disassoc append     --input FILE --store DIR --k K --m M [--batch-size N]
                      [--max-cluster-size N] [--no-refine]
                      [--max-dirty-frac F] [--publish DIR] [--out-prefix PREFIX]
                      [OBS FLAGS]
  disassoc store-info --store DIR
  disassoc anonymize  (--input FILE | --store DIR) --k K --m M
                      [--batch-size N] [--max-cluster-size N] [--threads N]
                      [--no-refine] --out-prefix PREFIX [OBS FLAGS]
  disassoc reconstruct --chunks FILE.chunks.json --out FILE [--samples N] [--seed N]
  disassoc evaluate   (--input FILE | --store DIR) --k K --m M
                      [--batch-size N] [--threads N] [OBS FLAGS]
  disassoc serve      --listen ADDR --data-dir DIR [--workers N]
                      [--queue-depth N] [--batch-size N] [--max-connections N]
                      [--max-body-bytes N] [--read-timeout-ms N]
                      [--write-timeout-ms N] [--job-timeout-ms N]
                      [--trace FILE]
  disassoc help

Store-backed runs stream the dataset in batches (out-of-core anonymization):
`--batch-size 0` keeps file input monolithic and selects the default batch
(8192 records) for store input.  `--threads N` anonymizes up to N batches
concurrently (0 = one per core) with byte-identical output, and the chunk
file is streamed to disk batch by batch, so neither input nor output
residency grows with the dataset.

`append` routes new records into the existing clustering (same HORPART
split criteria), re-runs VERPART/REFINE only on the clusters they land in
(bounded by --max-dirty-frac, default 0.2), persists them to the store, and
with --publish rewrites only the chunk files of dirty batches — committed by
one atomic manifest replace, so a crash leaves the old or the new chunk set,
never a mix.

`serve` runs the daemon: each dataset under --data-dir is its own locked
store plus chunk publication, ingest is acknowledged only once WAL-durable,
anonymize/append run on a bounded worker pool (503 + Retry-After over the
per-dataset --queue-depth), and SIGTERM drains in-flight jobs, flushes every
store, and exits 0.  Served publications are byte-identical to `anonymize`
on the same records and batch size.  Jobs past --job-timeout-ms answer 504;
--trace streams the daemon's JSONL event trace for its whole lifetime.
Setting DISASSOC_FAULTS arms the deterministic failpoint registry inside
the daemon (testing only — see crates/faults/README.md for the syntax).

OBS FLAGS — observability, off by default (zero-cost disabled path):
  --metrics-out FILE   write a JSON snapshot of every counter after the run
  --trace FILE         stream a JSONL trace of spans/events during the run
  --profile            print a human-readable counter summary on stdout
Collection never changes the published output — chunk files are
byte-identical with and without the flags.  `store-info` always lists the
store-side counters (zero in a fresh process).

Exit status: 2 for usage errors (bad flags or privacy parameters), 1 for
runtime failures (I/O, corrupt store, failed pipeline) — printed with their
full `caused by:` chain.
";

/// Default batch size for store-backed streaming runs.
pub const DEFAULT_STORE_BATCH: usize = 8192;

impl Command {
    /// Parses a command line (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, CliError> {
        let mut it = args.iter();
        let sub = it.next().map(String::as_str).unwrap_or("help");
        let rest: Vec<String> = it.cloned().collect();
        let flags = parse_flags(&rest)?;
        let get = |name: &str| flags.get(name).cloned();
        let req = |name: &str| {
            get(name).ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
        };
        let parse_usize = |name: &str, v: &str| {
            v.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got {v:?}")))
        };
        let parse_u64 = |name: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got {v:?}")))
        };
        match sub {
            "generate" => Ok(Command::Generate {
                kind: req("kind")?,
                records: parse_usize("records", &get("records").unwrap_or_else(|| "10000".into()))?,
                domain: parse_usize("domain", &get("domain").unwrap_or_else(|| "1000".into()))?,
                avg_len: get("avg-len")
                    .unwrap_or_else(|| "10".into())
                    .parse()
                    .map_err(|_| CliError::Usage("--avg-len expects a number".into()))?,
                scale: parse_usize("scale", &get("scale").unwrap_or_else(|| "100".into()))?,
                seed: parse_u64("seed", &get("seed").unwrap_or_else(|| "42".into()))?,
                out: PathBuf::from(req("out")?),
            }),
            "stats" => Ok(Command::Stats {
                input: PathBuf::from(req("input")?),
            }),
            "anonymize" => {
                let (input, store) = input_or_store(&flags)?;
                Ok(Command::Anonymize {
                    input,
                    store,
                    batch_size: parse_usize(
                        "batch-size",
                        &get("batch-size").unwrap_or_else(|| "0".into()),
                    )?,
                    k: parse_usize("k", &req("k")?)?,
                    m: parse_usize("m", &req("m")?)?,
                    max_cluster_size: parse_usize(
                        "max-cluster-size",
                        &get("max-cluster-size").unwrap_or_else(|| "0".into()),
                    )?,
                    no_refine: flags.contains_key("no-refine"),
                    threads: parse_usize("threads", &get("threads").unwrap_or_else(|| "1".into()))?,
                    out_prefix: PathBuf::from(req("out-prefix")?),
                    obs: ObsOptions::from_flags(&flags),
                })
            }
            "append" => Ok(Command::Append {
                input: PathBuf::from(req("input")?),
                store: PathBuf::from(req("store")?),
                batch_size: parse_usize(
                    "batch-size",
                    &get("batch-size").unwrap_or_else(|| "0".into()),
                )?,
                k: parse_usize("k", &req("k")?)?,
                m: parse_usize("m", &req("m")?)?,
                max_cluster_size: parse_usize(
                    "max-cluster-size",
                    &get("max-cluster-size").unwrap_or_else(|| "0".into()),
                )?,
                no_refine: flags.contains_key("no-refine"),
                max_dirty_fraction: get("max-dirty-frac")
                    .unwrap_or_else(|| "0.2".into())
                    .parse()
                    .map_err(|_| CliError::Usage("--max-dirty-frac expects a number".into()))?,
                publish: get("publish").map(PathBuf::from),
                out_prefix: get("out-prefix").map(PathBuf::from),
                obs: ObsOptions::from_flags(&flags),
            }),
            "ingest" => Ok(Command::Ingest {
                input: PathBuf::from(req("input")?),
                store: PathBuf::from(req("store")?),
                batch_size: parse_usize(
                    "batch-size",
                    &get("batch-size").unwrap_or_else(|| "1024".into()),
                )?,
                memtable: parse_usize(
                    "memtable",
                    &get("memtable").unwrap_or_else(|| "8192".into()),
                )?,
                compact: flags.contains_key("compact"),
                obs: ObsOptions::from_flags(&flags),
            }),
            "store-info" => Ok(Command::StoreInfo {
                store: PathBuf::from(req("store")?),
            }),
            "reconstruct" => Ok(Command::Reconstruct {
                chunks: PathBuf::from(req("chunks")?),
                out: PathBuf::from(req("out")?),
                samples: parse_usize("samples", &get("samples").unwrap_or_else(|| "1".into()))?,
                seed: parse_u64("seed", &get("seed").unwrap_or_else(|| "7".into()))?,
            }),
            "evaluate" => {
                let (input, store) = input_or_store(&flags)?;
                Ok(Command::Evaluate {
                    input,
                    store,
                    batch_size: parse_usize(
                        "batch-size",
                        &get("batch-size").unwrap_or_else(|| "0".into()),
                    )?,
                    k: parse_usize("k", &req("k")?)?,
                    m: parse_usize("m", &req("m")?)?,
                    threads: parse_usize("threads", &get("threads").unwrap_or_else(|| "1".into()))?,
                    obs: ObsOptions::from_flags(&flags),
                })
            }
            "serve" => Ok(Command::Serve {
                listen: req("listen")?,
                data_dir: PathBuf::from(req("data-dir")?),
                workers: parse_usize("workers", &get("workers").unwrap_or_else(|| "2".into()))?,
                queue_depth: parse_usize(
                    "queue-depth",
                    &get("queue-depth").unwrap_or_else(|| "4".into()),
                )?,
                batch_size: parse_usize(
                    "batch-size",
                    &get("batch-size").unwrap_or_else(|| "0".into()),
                )?,
                max_connections: parse_usize(
                    "max-connections",
                    &get("max-connections").unwrap_or_else(|| "32".into()),
                )?,
                max_body_bytes: parse_u64(
                    "max-body-bytes",
                    &get("max-body-bytes").unwrap_or_else(|| (64u64 << 20).to_string()),
                )?,
                read_timeout_ms: parse_u64(
                    "read-timeout-ms",
                    &get("read-timeout-ms").unwrap_or_else(|| "10000".into()),
                )?,
                write_timeout_ms: parse_u64(
                    "write-timeout-ms",
                    &get("write-timeout-ms").unwrap_or_else(|| "10000".into()),
                )?,
                job_timeout_ms: parse_u64(
                    "job-timeout-ms",
                    &get("job-timeout-ms").unwrap_or_else(|| "600000".into()),
                )?,
                trace: get("trace").map(PathBuf::from),
            }),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(CliError::Usage(format!(
                "unknown subcommand {other:?}\n{USAGE}"
            ))),
        }
    }

    /// Executes the command, writing human-readable progress to `out`.
    pub fn run(&self, out: &mut dyn std::io::Write) -> Result<(), CliError> {
        // Failpoints arm from the environment for every subcommand so the
        // torture harness (and operators rehearsing failures) can inject
        // faults into real publication runs, not just the daemon; unset,
        // this leaves the registry disabled.
        disassoc_faults::arm_from_env()
            .map_err(|e| CliError::Usage(format!("bad {}: {e}", disassoc_faults::ENV_VAR)))?;
        match self {
            Command::Help => {
                writeln!(out, "{USAGE}")?;
                Ok(())
            }
            Command::Generate {
                kind,
                records,
                domain,
                avg_len,
                scale,
                seed,
                out: path,
            } => {
                let dataset = match kind.as_str() {
                    "quest" => {
                        let config = QuestConfig {
                            num_transactions: *records,
                            domain_size: *domain,
                            avg_transaction_len: *avg_len,
                            seed: *seed,
                            ..QuestConfig::default()
                        };
                        config.validate().map_err(CliError::Usage)?;
                        QuestGenerator::generate_with(config)
                    }
                    "pos" => RealDataset::Pos.generate_scaled(*scale),
                    "wv1" => RealDataset::Wv1.generate_scaled(*scale),
                    "wv2" => RealDataset::Wv2.generate_scaled(*scale),
                    other => {
                        return Err(CliError::Usage(format!("unknown dataset kind {other:?}")))
                    }
                };
                transact::io::write_numeric_transactions_path(&dataset, path)?;
                writeln!(
                    out,
                    "wrote {} records over {} terms to {}",
                    dataset.len(),
                    dataset.domain_size(),
                    path.display()
                )?;
                Ok(())
            }
            Command::Stats { input } => {
                let dataset = transact::io::read_numeric_transactions_path(input)?;
                let stats = DatasetStats::compute(&dataset);
                writeln!(out, "{}", stats.figure6_row(&input.display().to_string()))?;
                writeln!(
                    out,
                    "max term support {}  median term support {}  rare-term fraction {:.3}",
                    stats.max_term_support, stats.median_term_support, stats.fraction_rare_terms
                )?;
                Ok(())
            }
            Command::Anonymize {
                input,
                store,
                batch_size,
                k,
                m,
                max_cluster_size,
                no_refine,
                threads,
                out_prefix,
                obs,
            } => {
                let config = DisassociationConfig {
                    k: *k,
                    m: *m,
                    max_cluster_size: *max_cluster_size,
                    enable_refine: !no_refine,
                    ..Default::default()
                };
                config.validate()?;
                let session = obs.start()?;
                let chunks_path = out_prefix.with_extension("chunks.json");
                // The chunk file is streamed batch by batch: together with
                // the chunked sources this bounds BOTH original-record and
                // published-chunk residency by the batch size, not the
                // dataset size.  The stream goes to a `.partial` sibling
                // that replaces `chunks_path` only after a successful run:
                // a failed run never destroys an existing publication, a
                // missing input leaves no stray output at all (the sink is
                // created only after the source opened), and an aborted
                // partial file is removed rather than left looking valid.
                let partial_path = out_prefix.with_extension("chunks.json.partial");
                let mut stats = None;
                let result = with_source(input.as_deref(), store.as_deref(), *batch_size, |src| {
                    let mut sink = JsonChunksSink::create(&partial_path, &config)?;
                    let summary = run_pipeline(&config, src, &mut sink, *threads)?;
                    stats = Some(*sink.stats());
                    Ok(summary)
                });
                let summary = match result {
                    Ok(summary) => summary,
                    Err(e) => {
                        std::fs::remove_file(&partial_path).ok();
                        session.abort();
                        return Err(e);
                    }
                };
                if let Err(e) =
                    disassoc_store::publish::commit_flat_file(&partial_path, &chunks_path)
                {
                    std::fs::remove_file(&partial_path).ok();
                    session.abort();
                    return Err(e.into());
                }
                // lint:allow(panic, "stats are recorded on every Ok path of the run closure above")
                let stats = stats.expect("a successful run records its stats");
                writeln!(
                    out,
                    "anonymized {} records into {} simple clusters ({} record chunks, {} shared chunks) in {:.2}s",
                    summary.records,
                    stats.simple_clusters,
                    stats.record_chunks,
                    stats.shared_chunks,
                    stats.total_seconds()
                )?;
                if !stats.refine_converged {
                    disassoc_obs::warn(
                        disassoc_obs::names::WARN_REFINE_PASS_CAP,
                        &format!(
                            "refining hit its pass limit after {} passes without converging; \
                             the publication is valid but further joint clusters may have been possible",
                            stats.refine_passes
                        ),
                        &[("passes", Attr::U64(stats.refine_passes as u64))],
                    );
                }
                writeln!(out, "published chunks: {}", chunks_path.display())?;
                session.finish(out)?;
                Ok(())
            }
            Command::Append {
                input,
                store,
                batch_size,
                k,
                m,
                max_cluster_size,
                no_refine,
                max_dirty_fraction,
                publish,
                out_prefix,
                obs,
            } => {
                let config = DisassociationConfig {
                    k: *k,
                    m: *m,
                    max_cluster_size: *max_cluster_size,
                    enable_refine: !no_refine,
                    ..Default::default()
                };
                config.validate()?;
                let session = obs.start()?;
                // lint:allow(nondeterminism, "elapsed-seconds reporting on stdout; never reaches published bytes")
                let t0 = std::time::Instant::now();
                let mut st = open_existing_store(store)?;
                let size = if *batch_size == 0 {
                    DEFAULT_STORE_BATCH
                } else {
                    *batch_size
                };
                // Rebuild the incremental state from the store's current
                // contents, then route the appended records into it: only
                // the clusters they land in are re-anonymized, and only the
                // batches holding those clusters are republished.
                let mut pipeline = {
                    let mut source = st.source(size);
                    IncrementalPipeline::build(config.clone(), &mut source)?
                };
                let mut reader = ReaderSource::open(input, 0)?;
                let mut new_records: Vec<Record> = Vec::new();
                while let Some(batch) = reader.next_batch()? {
                    new_records.extend(batch);
                }
                let options = AppendOptions {
                    max_dirty_fraction: *max_dirty_fraction,
                };
                let outcome = pipeline.append_with(&new_records, &options);
                st.append_batch(&new_records)?;
                st.flush()?;
                writeln!(
                    out,
                    "appended {} records: {} clusters re-anonymized, {} reused untouched, \
                     {} new, {} chunks republished ({} clusters total) in {:.2}s",
                    outcome.appended_records,
                    outcome.dirty_clusters,
                    outcome.reused_clusters,
                    outcome.new_clusters,
                    outcome.republished_chunks,
                    outcome.total_clusters,
                    t0.elapsed().as_secs_f64()
                )?;
                if let Some(dir) = publish {
                    let mut chunks = ChunkDir::open(dir)?;
                    let before: std::collections::HashMap<usize, u64> =
                        chunks.generations().into_iter().collect();
                    // Deliver the dirty batches (a fresh process rebuilds
                    // with every batch dirty); the chunk dir skips any batch
                    // whose committed file already holds identical content,
                    // so only real changes hit the disk and the clean files
                    // stay byte-identical.
                    if chunks.is_empty() {
                        pipeline.publish_all(&mut chunks)?;
                    } else {
                        pipeline.publish_dirty(&mut chunks)?;
                    }
                    let rewritten = chunks
                        .generations()
                        .into_iter()
                        .filter(|(batch, generation)| before.get(batch) != Some(generation))
                        .count();
                    writeln!(
                        out,
                        "republished {rewritten} of {} batches to {}",
                        pipeline.batch_count(),
                        dir.display()
                    )?;
                }
                if let Some(prefix) = out_prefix {
                    let chunks_path = prefix.with_extension("chunks.json");
                    let partial_path = prefix.with_extension("chunks.json.partial");
                    let result = (|| -> Result<(), CliError> {
                        let mut sink = JsonChunksSink::create(&partial_path, &config)?;
                        pipeline.publish_all(&mut sink)?;
                        Ok(())
                    })();
                    let result = result.and_then(|()| {
                        disassoc_store::publish::commit_flat_file(&partial_path, &chunks_path)
                            .map_err(CliError::from)
                    });
                    if let Err(e) = result {
                        std::fs::remove_file(&partial_path).ok();
                        session.abort();
                        return Err(e);
                    }
                    writeln!(out, "published chunks: {}", chunks_path.display())?;
                }
                session.finish(out)?;
                Ok(())
            }
            Command::Ingest {
                input,
                store,
                batch_size,
                memtable,
                compact,
                obs,
            } => {
                let session = obs.start()?;
                // lint:allow(nondeterminism, "elapsed-seconds reporting on stdout; never reaches published bytes")
                let t0 = std::time::Instant::now();
                let mut st = Store::open(
                    store,
                    StoreConfig {
                        memtable_capacity: (*memtable).max(1),
                        ..StoreConfig::default()
                    },
                )?;
                if st.recovered_records() > 0 {
                    disassoc_obs::warn(
                        disassoc_obs::names::WARN_STORE_WAL_RECOVERY,
                        &format!(
                            "recovered {} unsealed records from the write-ahead log",
                            st.recovered_records()
                        ),
                        &[("records", Attr::U64(st.recovered_records()))],
                    );
                }
                let before = st.len();
                let mut reader = ReaderSource::open(input, (*batch_size).max(1))?;
                while let Some(batch) = reader.next_batch()? {
                    st.append_batch(&batch)?;
                }
                st.flush()?;
                let ingested = st.len() - before;
                writeln!(
                    out,
                    "ingested {} records into {} ({} total) in {:.2}s",
                    ingested,
                    store.display(),
                    st.len(),
                    t0.elapsed().as_secs_f64()
                )?;
                if *compact {
                    let stats = st.compact()?;
                    writeln!(
                        out,
                        "compacted {} segments into {} ({} merges, amplification {:.2})",
                        stats.segments_before,
                        stats.segments_after,
                        stats.merges,
                        stats.amplification()
                    )?;
                }
                session.finish(out)?;
                Ok(())
            }
            Command::StoreInfo { store } => {
                let st = open_existing_store(store)?;
                let info = st.info()?;
                writeln!(
                    out,
                    "store {}: {} records ({} sealed in {} segments, {} in memtable)",
                    store.display(),
                    info.records,
                    info.records_in_segments,
                    info.segments.len(),
                    info.memtable_records
                )?;
                writeln!(
                    out,
                    "segment bytes {}  wal bytes {}  terms [{}..{}] distinct<= {} occurrences {}",
                    info.segment_bytes(),
                    info.wal_bytes,
                    info.terms.min_term.map_or("-".into(), |t| t.to_string()),
                    info.terms.max_term.map_or("-".into(), |t| t.to_string()),
                    info.terms.distinct_terms,
                    info.terms.term_occurrences
                )?;
                for (entry, meta) in &info.segments {
                    writeln!(
                        out,
                        "  segment {:>6}  {:>10} records  {:>12} bytes  {}",
                        entry.id, entry.records, entry.bytes, meta.terms.term_occurrences
                    )?;
                }
                // The store-side obs counters: all zero in a fresh process
                // (collection is off by default), populated when an earlier
                // command in this process ran with an obs flag.
                writeln!(out, "obs counters (process-wide):")?;
                for counter in disassoc_obs::metrics::counters::ALL {
                    if counter.name().starts_with("store.") {
                        writeln!(out, "  {:<32} {}", counter.name(), counter.get())?;
                    }
                }
                Ok(())
            }
            Command::Reconstruct {
                chunks,
                out: path,
                samples,
                seed,
            } => {
                let text = std::fs::read_to_string(chunks)?;
                let published: disassociation::DisassociatedDataset = serde_json::from_str(&text)?;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(*seed);
                let reconstructions = reconstruct_many(&published, (*samples).max(1), &mut rng);
                for (i, d) in reconstructions.iter().enumerate() {
                    let target = if reconstructions.len() == 1 {
                        path.clone()
                    } else {
                        path.with_extension(format!("{i}.dat"))
                    };
                    transact::io::write_numeric_transactions_path(d, &target)?;
                    writeln!(out, "reconstruction {} -> {}", i, target.display())?;
                }
                Ok(())
            }
            Command::Evaluate {
                input,
                store,
                batch_size,
                k,
                m,
                threads,
                obs,
            } => {
                let config = DisassociationConfig {
                    k: *k,
                    m: *m,
                    ..Default::default()
                };
                config.validate()?;
                let session = obs.start()?;
                let result = (|| -> Result<InformationLoss, CliError> {
                    // The loss metrics compare against the original records,
                    // so `evaluate` materializes the dataset regardless of
                    // source (it is an offline analysis tool, not the ingest
                    // path).
                    let dataset = match (input, store) {
                        (Some(path), _) => transact::io::read_numeric_transactions_path(path)?,
                        (None, Some(dir)) => {
                            let st = open_existing_store(dir)?;
                            let mut records: Vec<Record> = Vec::new();
                            let mut source = st.source(DEFAULT_STORE_BATCH);
                            while let Some(batch) = source.next_batch()? {
                                records.extend(batch);
                            }
                            Dataset::from_records(records)
                        }
                        (None, None) => unreachable!("parser enforces input xor store"),
                    };
                    // Same batch-size semantics as `anonymize`, so the metrics
                    // describe the publication `anonymize` would actually
                    // write: 0 = monolithic for file input, default batch for
                    // store.
                    let effective_batch = if store.is_some() && *batch_size == 0 {
                        DEFAULT_STORE_BATCH
                    } else {
                        *batch_size
                    };
                    let mut source = DatasetSource::new(&dataset, effective_batch);
                    let mut sink = CollectSink::for_config(&config);
                    run_pipeline(&config, &mut source, &mut sink, *threads)?;
                    let output: DisassociationOutput = sink.into_output();
                    Ok(InformationLoss::evaluate(
                        &dataset,
                        &output,
                        &LossConfig::default(),
                    ))
                })();
                let loss = match result {
                    Ok(loss) => loss,
                    Err(e) => {
                        session.abort();
                        return Err(e);
                    }
                };
                writeln!(out, "{}", loss.table_row(&format!("k={k} m={m}")))?;
                session.finish(out)?;
                Ok(())
            }
            Command::Serve {
                listen,
                data_dir,
                workers,
                queue_depth,
                batch_size,
                max_connections,
                max_body_bytes,
                read_timeout_ms,
                write_timeout_ms,
                job_timeout_ms,
                trace,
            } => {
                let config = disassoc_serve::ServeConfig {
                    workers: (*workers).max(1),
                    queue_depth: (*queue_depth).max(1),
                    max_body_bytes: *max_body_bytes,
                    read_timeout: std::time::Duration::from_millis((*read_timeout_ms).max(1)),
                    write_timeout: std::time::Duration::from_millis((*write_timeout_ms).max(1)),
                    max_connections: (*max_connections).max(1),
                    batch_size: if *batch_size == 0 {
                        DEFAULT_STORE_BATCH
                    } else {
                        *batch_size
                    },
                    job_reply_timeout: std::time::Duration::from_millis((*job_timeout_ms).max(1)),
                };
                if let Some(path) = trace {
                    disassoc_obs::trace::init_file(path)?;
                }
                // SIGTERM/SIGINT become a graceful drain instead of a kill.
                disassoc_serve::signal::install();
                let server = disassoc_serve::Server::bind(listen.as_str(), data_dir, config)?;
                let addr = server.local_addr()?;
                // The daemon tests (and humans backgrounding the process)
                // read this line to learn the bound port, so it must hit the
                // pipe before the accept loop starts blocking.
                writeln!(out, "listening on {addr} (data dir {})", data_dir.display())?;
                out.flush()?;
                let run_result = server.run();
                if trace.is_some() {
                    disassoc_obs::trace::shutdown()?;
                }
                run_result?;
                writeln!(out, "drained and shut down cleanly")?;
                Ok(())
            }
        }
    }
}

/// Runs a fully-configured pipeline over an already-built source and sink.
fn run_pipeline(
    config: &DisassociationConfig,
    source: &mut dyn RecordSource,
    sink: &mut dyn ChunkSink,
    threads: usize,
) -> Result<RunSummary, CliError> {
    Ok(Pipeline::new(config.clone())
        .source(source)
        .sink(sink)
        .threads(threads)
        .run()?)
}

/// Builds the [`RecordSource`] matching the `--input FILE` / `--store DIR`
/// choice and hands it to `f`: file input streams through [`ReaderSource`]
/// (`batch_size == 0` = one monolithic batch, the historical behaviour),
/// store input through [`Store::source`] (`0` = [`DEFAULT_STORE_BATCH`]).
/// Identical record sequences with identical batch sizes publish
/// byte-identical datasets regardless of source.
fn with_source<T>(
    input: Option<&Path>,
    store: Option<&Path>,
    batch_size: usize,
    f: impl FnOnce(&mut dyn RecordSource) -> Result<T, CliError>,
) -> Result<T, CliError> {
    match (input, store) {
        (Some(path), _) => {
            let mut source = ReaderSource::open(path, batch_size)?;
            f(&mut source)
        }
        (None, Some(dir)) => {
            let st = open_existing_store(dir)?;
            let size = if batch_size == 0 {
                DEFAULT_STORE_BATCH
            } else {
                batch_size
            };
            let mut source = st.source(size);
            f(&mut source)
        }
        (None, None) => Err(CliError::Usage(
            "one of --input or --store is required".into(),
        )),
    }
}

/// Opens a store for reading, refusing to conjure an empty one out of a
/// missing/uninitialized directory (only `ingest` creates stores).
fn open_existing_store(dir: &Path) -> Result<Store, CliError> {
    if !Store::exists(dir) {
        return Err(CliError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no store at {} (run `disassoc ingest` first)",
                dir.display()
            ),
        )));
    }
    Ok(Store::open(dir, StoreConfig::default())?)
}

/// Resolves the mutually exclusive `--input FILE` / `--store DIR` pair.
fn input_or_store(
    flags: &BTreeMap<String, String>,
) -> Result<(Option<PathBuf>, Option<PathBuf>), CliError> {
    match (flags.get("input"), flags.get("store")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--input and --store are mutually exclusive".into(),
        )),
        (None, None) => Err(CliError::Usage(
            "one of --input or --store is required".into(),
        )),
        (input, store) => Ok((input.map(PathBuf::from), store.map(PathBuf::from))),
    }
}

/// Parses `--flag value` and boolean `--flag` arguments.
fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, CliError> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::Usage(format!("unexpected argument {arg:?}")));
        };
        let is_boolean = name == "no-refine" || name == "compact" || name == "profile";
        if is_boolean {
            flags.insert(name.to_owned(), "true".to_owned());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
            flags.insert(name.to_owned(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parse_generate() {
        let cmd = Command::parse(&args(
            "generate --kind quest --records 100 --domain 50 --out /tmp/x.dat",
        ))
        .unwrap();
        match cmd {
            Command::Generate {
                kind,
                records,
                domain,
                ..
            } => {
                assert_eq!(kind, "quest");
                assert_eq!(records, 100);
                assert_eq!(domain, 50);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_anonymize_with_flags() {
        let cmd = Command::parse(&args(
            "anonymize --input d.dat --k 5 --m 2 --no-refine --threads 4 --out-prefix pub",
        ))
        .unwrap();
        match cmd {
            Command::Anonymize {
                k,
                m,
                no_refine,
                threads,
                ..
            } => {
                assert_eq!((k, m), (5, 2));
                assert!(no_refine);
                assert_eq!(threads, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // --threads defaults to 1 (serial).
        match Command::parse(&args("evaluate --input d.dat --k 5 --m 2")).unwrap() {
            Command::Evaluate { threads, .. } => assert_eq!(threads, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_required_flag_is_a_usage_error() {
        let err =
            Command::parse(&args("anonymize --input d.dat --k 5 --out-prefix pub")).unwrap_err();
        assert!(err.to_string().contains("--m"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(Command::parse(&args("frobnicate")).is_err());
    }

    #[test]
    fn bad_integer_is_an_error() {
        let err = Command::parse(&args("evaluate --input d.dat --k five --m 2")).unwrap_err();
        assert!(err.to_string().contains("--k"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn empty_command_line_is_help() {
        assert_eq!(Command::parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn positional_arguments_are_rejected() {
        assert!(Command::parse(&args("stats input.dat")).is_err());
    }

    #[test]
    fn exit_codes_split_usage_from_runtime() {
        // Usage: bad flags and invalid privacy parameters.
        assert_eq!(CliError::Usage("nope".into()).exit_code(), 2);
        assert_eq!(
            CliError::Config(ConfigError::KTooSmall { k: 1 }).exit_code(),
            2
        );
        // Runtime: I/O, store, pipeline.
        assert_eq!(CliError::Io(std::io::Error::other("boom")).exit_code(), 1);
        assert_eq!(
            CliError::Store(disassoc_store::StoreError::corrupt("bad")).exit_code(),
            1
        );
        // `--k 1` flows through run() as a Config error, not a panic.
        let mut sink = Vec::new();
        let err = Command::parse(&args("evaluate --input d.dat --k 1 --m 2"))
            .unwrap()
            .run(&mut sink)
            .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("k must be at least 2"));
    }

    #[test]
    fn runtime_errors_render_their_cause_chain() {
        // A missing input file: CliError::Pipeline -> SourceError -> io.
        let prefix = std::env::temp_dir().join(format!("cli_chain_test_{}", std::process::id()));
        let mut sink = Vec::new();
        let err = Command::parse(&args(&format!(
            "anonymize --input /nonexistent/x.dat --k 3 --m 2 --out-prefix {}",
            prefix.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let chain = err.render_chain();
        assert!(chain.contains("caused by:"), "{chain}");
        assert!(chain.contains("/nonexistent/x.dat"), "{chain}");
        // The sink is created only after the source opened: a missing input
        // must leave no output file behind, partial or otherwise.
        assert!(!prefix.with_extension("chunks.json").exists());
        assert!(!prefix.with_extension("chunks.json.partial").exists());
    }

    #[test]
    fn failed_rerun_preserves_an_existing_publication() {
        let dir = std::env::temp_dir().join(format!("cli_rerun_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.dat");
        let prefix = dir.join("pub");
        let mut sink = Vec::new();
        Command::parse(&args(&format!(
            "generate --kind quest --records 120 --domain 40 --out {}",
            data.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        Command::parse(&args(&format!(
            "anonymize --input {} --k 3 --m 2 --out-prefix {}",
            data.display(),
            prefix.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        let chunks = prefix.with_extension("chunks.json");
        let good = std::fs::read(&chunks).unwrap();

        // Re-run against a now-corrupt input: the run fails, and the
        // previous publication survives byte-for-byte (the stream went to a
        // `.partial` sibling that is removed on failure).
        std::fs::write(&data, "1 2\nnot numbers\n").unwrap();
        let err = Command::parse(&args(&format!(
            "anonymize --input {} --k 3 --m 2 --out-prefix {}",
            data.display(),
            prefix.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert_eq!(std::fs::read(&chunks).unwrap(), good);
        assert!(!prefix.with_extension("chunks.json.partial").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_append() {
        let cmd = Command::parse(&args(
            "append --input d.dat --store /tmp/s --k 3 --m 2 --max-dirty-frac 0.1 \
             --publish /tmp/chunks --out-prefix pub",
        ))
        .unwrap();
        match cmd {
            Command::Append {
                k,
                m,
                max_dirty_fraction,
                publish,
                out_prefix,
                ..
            } => {
                assert_eq!((k, m), (3, 2));
                assert_eq!(max_dirty_fraction, 0.1);
                assert_eq!(publish, Some(PathBuf::from("/tmp/chunks")));
                assert_eq!(out_prefix, Some(PathBuf::from("pub")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // --store and --input are both required; k/m validate like anonymize.
        let err = Command::parse(&args("append --input d.dat --k 3 --m 2")).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let mut sink = Vec::new();
        let err = Command::parse(&args("append --input d.dat --store /tmp/s --k 1 --m 2"))
            .unwrap()
            .run(&mut sink)
            .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        // Appending to a missing store is a runtime error, not store creation.
        let missing = std::env::temp_dir().join("disassoc_cli_append_missing_store");
        std::fs::remove_dir_all(&missing).ok();
        let err = Command::parse(&args(&format!(
            "append --input d.dat --store {} --k 3 --m 2",
            missing.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("no store at"));
        assert!(!missing.exists());
    }

    #[test]
    fn end_to_end_append_republishes_only_dirty_batches() {
        let dir =
            std::env::temp_dir().join(format!("disassoc_cli_append_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.dat");
        let delta = dir.join("delta.dat");
        let store = dir.join("store");
        let chunks_dir = dir.join("chunks");
        let mut sink = Vec::new();

        Command::parse(&args(&format!(
            "generate --kind quest --records 400 --domain 90 --out {}",
            data.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        Command::parse(&args(&format!(
            "generate --kind quest --records 20 --domain 90 --seed 99 --out {}",
            delta.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        Command::parse(&args(&format!(
            "ingest --input {} --store {}",
            data.display(),
            store.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();

        // First append against a fresh chunk dir publishes everything and
        // grows the store; batches are sized so the base spans 4 batches.
        let prefix = dir.join("published");
        Command::parse(&args(&format!(
            "append --input {} --store {} --k 3 --m 2 --batch-size 100 --publish {} --out-prefix {}",
            delta.display(),
            store.display(),
            chunks_dir.display(),
            prefix.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        let manifest_v1 = std::fs::read_to_string(chunks_dir.join("CHUNKS.json")).unwrap();
        let chunks_path = prefix.with_extension("chunks.json");
        assert!(chunks_path.exists());

        // The combined publication reconstructs to the full record count.
        let recon = dir.join("recon.dat");
        Command::parse(&args(&format!(
            "reconstruct --chunks {} --out {}",
            chunks_path.display(),
            recon.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        let reconstructed = transact::io::read_numeric_transactions_path(&recon).unwrap();
        assert_eq!(reconstructed.len(), 420);

        // A second append republishes only the dirty batches: at least one
        // clean batch keeps its committed file name.
        Command::parse(&args(&format!(
            "append --input {} --store {} --k 3 --m 2 --batch-size 100 --publish {}",
            delta.display(),
            store.display(),
            chunks_dir.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        let manifest_v2 = std::fs::read_to_string(chunks_dir.join("CHUNKS.json")).unwrap();
        assert_ne!(manifest_v1, manifest_v2);

        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("appended 20 records"), "{text}");
        assert!(text.contains("republished"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_obs_flags() {
        let cmd = Command::parse(&args(
            "anonymize --input d.dat --k 5 --m 2 --out-prefix pub \
             --metrics-out m.json --trace t.jsonl --profile",
        ))
        .unwrap();
        match cmd {
            Command::Anonymize { obs, .. } => {
                assert_eq!(obs.metrics_out, Some(PathBuf::from("m.json")));
                assert_eq!(obs.trace, Some(PathBuf::from("t.jsonl")));
                assert!(obs.profile);
                assert!(obs.is_active());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: everything off, session is a no-op.
        match Command::parse(&args(
            "anonymize --input d.dat --k 5 --m 2 --out-prefix pub",
        ))
        .unwrap()
        {
            Command::Anonymize { obs, .. } => assert!(!obs.is_active()),
            other => panic!("unexpected {other:?}"),
        }
        match Command::parse(&args("ingest --input d.dat --store /tmp/s --profile")).unwrap() {
            Command::Ingest { obs, .. } => assert!(obs.profile && obs.metrics_out.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn obs_flags_do_not_change_the_publication() {
        let dir =
            std::env::temp_dir().join(format!("disassoc_cli_obs_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.dat");
        let mut sink = Vec::new();
        Command::parse(&args(&format!(
            "generate --kind quest --records 300 --domain 80 --out {}",
            data.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();

        // Plain run, then a run with every obs flag on.
        let plain = dir.join("plain");
        Command::parse(&args(&format!(
            "anonymize --input {} --k 3 --m 2 --out-prefix {}",
            data.display(),
            plain.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        let observed = dir.join("observed");
        let metrics_path = dir.join("m.json");
        let trace_path = dir.join("t.jsonl");
        let mut obs_out = Vec::new();
        Command::parse(&args(&format!(
            "anonymize --input {} --k 3 --m 2 --out-prefix {} \
             --metrics-out {} --trace {} --profile",
            data.display(),
            observed.display(),
            metrics_path.display(),
            trace_path.display()
        )))
        .unwrap()
        .run(&mut obs_out)
        .unwrap();

        // Identical publication bytes; parseable metrics; nonempty JSONL trace.
        assert_eq!(
            std::fs::read(plain.with_extension("chunks.json")).unwrap(),
            std::fs::read(observed.with_extension("chunks.json")).unwrap(),
            "obs flags must not change the published chunks"
        );
        let metrics: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let counters = metrics.get("counters").expect("counters object");
        assert!(counters.get("core.anonymize_runs").is_some());
        let trace_text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(!trace_text.trim().is_empty(), "trace should record events");
        for line in trace_text.lines() {
            let parsed: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
            assert!(parsed.get("ts_us").is_some() && parsed.get("name").is_some());
        }
        let text = String::from_utf8(obs_out).unwrap();
        assert!(text.contains("metrics snapshot:"), "{text}");
        assert!(text.contains("core.anonymize_runs"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_ingest_and_store_info() {
        let cmd = Command::parse(&args(
            "ingest --input d.dat --store /tmp/s --batch-size 500 --memtable 2000 --compact",
        ))
        .unwrap();
        match cmd {
            Command::Ingest {
                batch_size,
                memtable,
                compact,
                ..
            } => {
                assert_eq!(batch_size, 500);
                assert_eq!(memtable, 2000);
                assert!(compact);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = Command::parse(&args("store-info --store /tmp/s")).unwrap();
        assert!(matches!(cmd, Command::StoreInfo { .. }));
    }

    #[test]
    fn anonymize_accepts_store_or_input_but_not_both() {
        let cmd = Command::parse(&args(
            "anonymize --store /tmp/s --k 3 --m 2 --batch-size 64 --out-prefix p",
        ))
        .unwrap();
        match cmd {
            Command::Anonymize {
                input,
                store,
                batch_size,
                ..
            } => {
                assert!(input.is_none());
                assert_eq!(store, Some(PathBuf::from("/tmp/s")));
                assert_eq!(batch_size, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = Command::parse(&args(
            "anonymize --input d.dat --store /tmp/s --k 3 --m 2 --out-prefix p",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        assert_eq!(err.exit_code(), 2);
        let err = Command::parse(&args("evaluate --k 3 --m 2")).unwrap_err();
        assert!(err.to_string().contains("--input or --store"));
    }

    #[test]
    fn reading_a_missing_store_is_an_error_not_an_empty_store() {
        let dir = std::env::temp_dir().join("disassoc_cli_missing_store");
        std::fs::remove_dir_all(&dir).ok();
        let mut sink = Vec::new();
        for cmd in [
            format!("store-info --store {}", dir.display()),
            format!(
                "anonymize --store {} --k 3 --m 2 --out-prefix {}",
                dir.display(),
                std::env::temp_dir()
                    .join("disassoc_cli_missing_store_pub")
                    .display()
            ),
            format!("evaluate --store {} --k 3 --m 2", dir.display()),
        ] {
            let err = Command::parse(&args(&cmd))
                .unwrap()
                .run(&mut sink)
                .unwrap_err();
            assert!(err.to_string().contains("no store at"), "{cmd}: {err}");
            assert_eq!(err.exit_code(), 1, "{cmd}");
        }
        assert!(!dir.exists(), "read commands must not create the store");
        // The anonymize attempt failed before its sink was created: no
        // chunk file (partial or otherwise) may exist.
        let pub_prefix = std::env::temp_dir().join("disassoc_cli_missing_store_pub");
        assert!(!pub_prefix.with_extension("chunks.json").exists());
        assert!(!pub_prefix.with_extension("chunks.json.partial").exists());
    }

    #[test]
    fn end_to_end_ingest_store_info_anonymize_from_store() {
        let dir = std::env::temp_dir().join("disassoc_cli_store_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.dat");
        let store = dir.join("store");
        let mut sink = Vec::new();

        Command::parse(&args(&format!(
            "generate --kind quest --records 200 --domain 60 --out {}",
            data.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();

        Command::parse(&args(&format!(
            "ingest --input {} --store {} --batch-size 16 --memtable 32 --compact",
            data.display(),
            store.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();

        Command::parse(&args(&format!("store-info --store {}", store.display())))
            .unwrap()
            .run(&mut sink)
            .unwrap();

        let prefix = dir.join("published");
        Command::parse(&args(&format!(
            "anonymize --store {} --k 3 --m 2 --batch-size 64 --out-prefix {}",
            store.display(),
            prefix.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        assert!(prefix.with_extension("chunks.json").exists());

        // A parallel run must produce the byte-identical chunk file.
        let prefix4 = dir.join("published4");
        Command::parse(&args(&format!(
            "anonymize --store {} --k 3 --m 2 --batch-size 64 --threads 4 --out-prefix {}",
            store.display(),
            prefix4.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        assert_eq!(
            std::fs::read(prefix.with_extension("chunks.json")).unwrap(),
            std::fs::read(prefix4.with_extension("chunks.json")).unwrap(),
            "--threads 4 must publish byte-identically to --threads 1"
        );

        Command::parse(&args(&format!(
            "evaluate --store {} --k 3 --m 2 --batch-size 64 --threads 2",
            store.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();

        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("ingested 200 records"), "{text}");
        assert!(text.contains("compacted"), "{text}");
        assert!(text.contains("store"), "{text}");
        assert!(text.contains("anonymized 200 records"), "{text}");
        assert!(text.contains("tKd"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_generate_anonymize_reconstruct_evaluate() {
        let dir = std::env::temp_dir().join("disassoc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.dat");
        let prefix = dir.join("published");
        let mut sink = Vec::new();

        Command::parse(&args(&format!(
            "generate --kind quest --records 300 --domain 80 --out {}",
            data.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        assert!(data.exists());

        Command::parse(&args(&format!("stats --input {}", data.display())))
            .unwrap()
            .run(&mut sink)
            .unwrap();

        Command::parse(&args(&format!(
            "anonymize --input {} --k 3 --m 2 --out-prefix {}",
            data.display(),
            prefix.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();
        let chunks = prefix.with_extension("chunks.json");
        assert!(chunks.exists());

        let recon = dir.join("recon.dat");
        Command::parse(&args(&format!(
            "reconstruct --chunks {} --out {} --samples 2",
            chunks.display(),
            recon.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();

        Command::parse(&args(&format!(
            "evaluate --input {} --k 3 --m 2",
            data.display()
        )))
        .unwrap()
        .run(&mut sink)
        .unwrap();

        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("anonymized 300 records"));
        assert!(text.contains("tKd"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
