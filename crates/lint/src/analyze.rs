//! Token-stream structure: function extents, `#[cfg(test)]` regions, and
//! `lint:allow` annotations.
//!
//! The linter never parses Rust into an AST; the three structural facts the
//! rules need are recoverable from the token stream with brace matching:
//!
//! - **test regions** — any item under a `#[test]` or `#[cfg(test)]`
//!   attribute (including whole `mod tests { .. }` blocks), so the panic
//!   and nondeterminism policies apply to shipped code only;
//! - **function extents** — the token range of each `fn` item body, the
//!   granularity at which DL001 decides "this raw I/O call is covered by a
//!   failpoint-seam consultation";
//! - **annotations** — `// lint:allow(key, "reason")` comments, which
//!   suppress a rule on their own line or, when alone on a line, on the
//!   next token-bearing line.

use crate::lexer::{Comment, Lexed, Token, TokenKind};
use std::collections::BTreeMap;

/// One parsed `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// The rule key (`seam`, `panic`, ...) or rule id (`DL003`).
    pub key: String,
    /// The quoted justification; suppression requires it to be non-empty.
    pub reason: String,
    /// The source line the annotation applies to (resolved: the comment's
    /// own line if code precedes it, otherwise the next line with tokens).
    pub applies_to: u32,
}

/// Structural facts about one lexed file.
#[derive(Debug, Default)]
pub struct Structure {
    /// Token-index ranges (inclusive start, exclusive end) of test items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Token-index ranges of `fn` items, from the `fn` keyword through the
    /// closing brace of the body.  Nested functions produce nested ranges.
    pub fn_ranges: Vec<(usize, usize)>,
    /// Parsed `lint:allow` annotations.
    pub annotations: Vec<Annotation>,
}

impl Structure {
    /// True when token `i` is inside a `#[test]`/`#[cfg(test)]` item.
    pub fn is_test_token(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// The innermost `fn` item extent containing token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<(usize, usize)> {
        self.fn_ranges
            .iter()
            .filter(|&&(s, e)| s <= i && i < e)
            .min_by_key(|&&(s, e)| e - s)
            .copied()
    }

    /// True when an annotation with `key` (or the rule id `id`) covers
    /// `line` with a non-empty reason.
    pub fn allowed(&self, key: &str, id: &str, line: u32) -> bool {
        self.annotations
            .iter()
            .any(|a| a.applies_to == line && !a.reason.is_empty() && (a.key == key || a.key == id))
    }
}

/// Derives the structural facts for a lexed file.
pub fn analyze(lexed: &Lexed) -> Structure {
    let tokens = &lexed.tokens;
    let mut st = Structure {
        test_ranges: test_ranges(tokens),
        fn_ranges: fn_ranges(tokens),
        annotations: Vec::new(),
    };
    // Map each line to whether any token starts on it, so a solo-line
    // annotation can resolve to the next token-bearing line.
    let mut token_lines: BTreeMap<u32, u32> = BTreeMap::new();
    for t in tokens {
        token_lines.entry(t.line).or_insert(t.col);
    }
    for c in &lexed.comments {
        if let Some(mut ann) = parse_annotation(c) {
            let code_before = token_lines.get(&c.line).is_some_and(|&col| {
                // Any token on the same line means the comment trails code.
                col > 0
            });
            if !code_before {
                if let Some((&next, _)) = token_lines.range(c.line + 1..).next() {
                    ann.applies_to = next;
                }
            }
            st.annotations.push(ann);
        }
    }
    st
}

/// Parses `lint:allow(key, "reason")` out of a comment body.
fn parse_annotation(c: &Comment) -> Option<Annotation> {
    let text = c.text.trim().trim_start_matches('/').trim();
    let rest = text.strip_prefix("lint:allow(")?;
    let (key, rest) = rest.split_once([',', ')'])?;
    let reason = rest
        .split_once('"')
        .and_then(|(_, r)| r.split_once('"'))
        .map(|(reason, _)| reason.trim().to_string())
        .unwrap_or_default();
    Some(Annotation {
        key: key.trim().to_string(),
        reason,
        applies_to: c.line,
    })
}

/// Collects the token ranges of items marked `#[test]` or `#[cfg(test)]`.
fn test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_punct(tokens, i, "#") || !is_punct(tokens, i + 1, "[") {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching(tokens, i + 1, "[", "]") else {
            break;
        };
        if !attr_is_test(&tokens[i + 2..attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_end + 1;
        while is_punct(tokens, j, "#") && is_punct(tokens, j + 1, "[") {
            match matching(tokens, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => return out,
            }
        }
        // The item extends to the first `;` at depth 0 or through its
        // first top-level `{ .. }` block (fn, mod, impl, struct, ...).
        let mut depth = 0i32;
        let mut end = tokens.len();
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 && tokens[k].text == "}" {
                        end = k + 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        out.push((attr_start, end));
        i = end;
    }
    out
}

/// True when the attribute tokens (inside `#[ .. ]`) gate on `test`:
/// `test`, `cfg(test)`, `cfg(all(test, ..))` — but not `cfg(not(test))`.
fn attr_is_test(attr: &[Token]) -> bool {
    match attr.first() {
        Some(t) if t.kind == TokenKind::Ident && t.text == "test" => attr.len() == 1,
        Some(t) if t.kind == TokenKind::Ident && t.text == "cfg" => {
            let mut not_depth: i32 = 0;
            let mut in_not = false;
            for (i, t) in attr.iter().enumerate().skip(1) {
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Ident, "not") => {
                        in_not = true;
                    }
                    (TokenKind::Punct, "(") if in_not => {
                        in_not = false;
                        not_depth += 1;
                    }
                    (TokenKind::Punct, "(") if not_depth > 0 => not_depth += 1,
                    (TokenKind::Punct, ")") if not_depth > 0 => not_depth -= 1,
                    (TokenKind::Ident, "test") if not_depth == 0 => {
                        let _ = i;
                        return true;
                    }
                    _ => {}
                }
            }
            false
        }
        _ => false,
    }
}

/// Collects the token extent of every `fn` item with a body.
fn fn_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || t.text != "fn" {
            continue;
        }
        if tokens.get(i + 1).is_none_or(|n| n.kind != TokenKind::Ident) {
            continue; // `Fn(..)` bounds lex as `Fn`, never bare `fn`.
        }
        // Find the body `{` at bracket/paren depth 0, or `;` (no body).
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut body_start = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break,
                "{" if depth == 0 => {
                    body_start = Some(j);
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = body_start {
            if let Some(close) = matching(tokens, open, "{", "}") {
                out.push((i, close + 1));
            }
        }
    }
    out
}

fn is_punct(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold `open_text`).
fn matching(tokens: &[Token], open: usize, open_text: &str, close_text: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == open_text {
                depth += 1;
            } else if t.text == close_text {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let lexed = lex("fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }");
        let st = analyze(&lexed);
        assert_eq!(st.test_ranges.len(), 1);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .unwrap();
        assert!(st.is_test_token(unwrap_idx));
        assert!(!st.is_test_token(0));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let lexed = lex("#[cfg(not(test))]\nfn live() { x.unwrap(); }");
        let st = analyze(&lexed);
        assert!(st.test_ranges.is_empty());
    }

    #[test]
    fn test_attribute_marks_one_fn() {
        let lexed = lex("#[test]\nfn t() { a(); }\nfn live() { b(); }");
        let st = analyze(&lexed);
        assert_eq!(st.test_ranges.len(), 1);
        let b_idx = lexed.tokens.iter().position(|t| t.text == "b").unwrap();
        assert!(!st.is_test_token(b_idx));
    }

    #[test]
    fn fn_extents_nest_and_cover_bodies() {
        let lexed = lex("fn outer() { fn inner() { x(); } y(); }");
        let st = analyze(&lexed);
        assert_eq!(st.fn_ranges.len(), 2);
        let x_idx = lexed.tokens.iter().position(|t| t.text == "x").unwrap();
        let (s, e) = st.enclosing_fn(x_idx).unwrap();
        assert_eq!(lexed.tokens[s + 1].text, "inner");
        assert!(e < lexed.tokens.len());
    }

    #[test]
    fn trailing_annotation_applies_to_its_own_line() {
        let lexed = lex("let t = now(); // lint:allow(nondeterminism, \"timing only\")");
        let st = analyze(&lexed);
        assert!(st.allowed("nondeterminism", "DL005", 1));
    }

    #[test]
    fn solo_annotation_applies_to_next_code_line() {
        let lexed = lex("// lint:allow(panic, \"infallible\")\n\nx.unwrap();");
        let st = analyze(&lexed);
        assert!(st.allowed("panic", "DL003", 3));
        assert!(!st.allowed("panic", "DL003", 1));
    }

    #[test]
    fn annotation_without_reason_does_not_suppress() {
        let lexed = lex("// lint:allow(panic)\nx.unwrap();");
        let st = analyze(&lexed);
        assert!(!st.allowed("panic", "DL003", 2));
    }

    #[test]
    fn rule_id_works_as_annotation_key() {
        let lexed = lex("x.unwrap(); // lint:allow(DL003, \"checked above\")");
        let st = analyze(&lexed);
        assert!(st.allowed("panic", "DL003", 1));
    }
}
