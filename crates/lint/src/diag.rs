//! Diagnostics: rustc-style text rendering and the `--json` machine form.

use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`DL001` ... `DL005`).
    pub rule: &'static str,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// How to fix or legitimately suppress it.
    pub help: String,
}

impl Finding {
    /// Renders the finding in the `file:line:col: error[DLxxx]` form the
    /// workspace CI log scrapers and editors expect.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        );
        if !self.help.is_empty() {
            let _ = write!(out, "\n  help: {}", self.help);
        }
        out
    }
}

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of rules that ran.
    pub rules_run: usize,
}

impl Report {
    /// Sorts findings into the stable (file, line, col, rule) order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }

    /// Serializes the report as the `--json` document.  Hand-rolled so the
    /// linter needs no serde; the schema is pinned by `tests/rules.rs`.
    pub fn to_json(&self, wall_seconds: f64) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"version\": 1,\n  \"rules_run\": {},\n  \"files_scanned\": {},\n  \"wall_seconds\": {:.3},\n  \"findings\": [",
            self.rules_run, self.files_scanned, wall_seconds
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"help\": \"{}\"}}",
                f.rule,
                escape(&f.file),
                f.line,
                f.col,
                escape(&f.message),
                escape(&f.help)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "DL001",
            file: "crates/cli/src/lib.rs".into(),
            line: 717,
            col: 17,
            message: "raw `fs::rename` outside the failpoint seam".into(),
            help: "route through `disassoc_store::failpoints`".into(),
        }
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let r = finding().render();
        assert!(r.starts_with("crates/cli/src/lib.rs:717:17: error[DL001]:"));
        assert!(r.contains("help:"));
    }

    #[test]
    fn json_escapes_and_structure() {
        let mut report = Report {
            findings: vec![Finding {
                message: "has \"quotes\" and\nnewline".into(),
                ..finding()
            }],
            files_scanned: 3,
            rules_run: 5,
        };
        report.sort();
        let json = report.to_json(0.25);
        assert!(json.contains("\"rules_run\": 5"));
        assert!(json.contains("has \\\"quotes\\\" and\\nnewline"));
        assert!(json.contains("\"wall_seconds\": 0.250"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let json = Report::default().to_json(0.0);
        assert!(json.contains("\"findings\": []"));
    }
}
