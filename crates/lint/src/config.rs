//! Hand-parsed `lint.toml` configuration.
//!
//! The parser accepts the subset of TOML the workspace config actually
//! uses — `[section]` headers, `key = "string"`, `key = true/false`, and
//! (possibly multi-line) `key = ["a", "b"]` arrays, with `#` comments —
//! and rejects everything else loudly.  Keeping the grammar this small is
//! what lets the linter stay zero-dependency.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// File name of the workspace lint configuration.
pub const CONFIG_FILE: &str = "lint.toml";

/// A configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    List(Vec<String>),
    /// A boolean.
    Bool(bool),
}

/// One `[section]` of the config: key → value.
pub type Section = BTreeMap<String, Value>;

/// The parsed configuration: section name → section.
#[derive(Debug, Default, Clone)]
pub struct Config {
    sections: BTreeMap<String, Section>,
}

/// A configuration error with the offending line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `lint.toml` (0 for file-level errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", CONFIG_FILE, self.message)
        } else {
            write!(f, "{}:{}: {}", CONFIG_FILE, self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

impl Config {
    /// Loads and parses `dir/lint.toml`.
    pub fn load(dir: &Path) -> Result<Config, ConfigError> {
        let path = dir.join(CONFIG_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        Config::parse(&text)
    }

    /// Parses configuration text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated [section] header"))?;
                section = name.trim().to_string();
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| err(lineno, "expected `key = value` or `[section]`"))?;
            if key.is_empty() {
                return Err(err(lineno, "empty key"));
            }
            // Multi-line arrays: keep consuming lines until brackets close.
            if value.starts_with('[') {
                while !balanced(&value) {
                    match lines.next() {
                        Some((_, cont)) => {
                            value.push(' ');
                            value.push_str(strip_comment(cont).trim());
                        }
                        None => return Err(err(lineno, "unterminated array")),
                    }
                }
            }
            let parsed = parse_value(lineno, &value)?;
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key, parsed);
        }
        Ok(cfg)
    }

    /// The named section, if present.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.get(name)
    }

    /// All section names, in sorted order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(|s| s.as_str())
    }

    /// A string list under `section.key`; empty when absent.
    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }

    /// A boolean under `section.key`, defaulting to `default`.
    pub fn flag(&self, section: &str, key: &str, default: bool) -> bool {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(lineno: u32, value: &str) -> Result<Value, ConfigError> {
    if value == "true" {
        return Ok(Value::Bool(true));
    }
    if value == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = value.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, "unterminated string"))?;
        return Ok(Value::Str(inner.to_string()));
    }
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        for item in split_items(inner) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(lineno, item)? {
                Value::Str(s) => items.push(s),
                _ => return Err(err(lineno, "arrays may contain only strings")),
            }
        }
        return Ok(Value::List(items));
    }
    Err(err(
        lineno,
        format!("unsupported value `{value}` (expected string, array, or bool)"),
    ))
}

/// Splits an array body on commas outside quotes.
fn split_items(inner: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        items.push(current);
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keys_and_arrays() {
        let cfg = Config::parse(
            "# header comment\n[workspace]\nroots = [\"crates\", \"tests\"]\n\n[DL003]\npaths = [\n  \"crates/core/src\", # inline comment\n  \"crates/store/src\",\n]\nenabled = true\n",
        )
        .unwrap();
        assert_eq!(cfg.list("workspace", "roots"), ["crates", "tests"]);
        assert_eq!(
            cfg.list("DL003", "paths"),
            ["crates/core/src", "crates/store/src"]
        );
        assert!(cfg.flag("DL003", "enabled", false));
        assert!(cfg.flag("DL999", "enabled", true));
    }

    #[test]
    fn strings_may_contain_hashes_and_commas() {
        let cfg =
            Config::parse("[x]\na = \"value # not comment\"\nb = [\"p, q\", \"r\"]\n").unwrap();
        assert_eq!(
            cfg.section("x").unwrap().get("a"),
            Some(&Value::Str("value # not comment".into()))
        );
        assert_eq!(cfg.list("x", "b"), ["p, q", "r"]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Config::parse("[x]\nkey value\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = Config::parse("[x]\nkey = 17\n").unwrap_err();
        assert!(e.message.contains("unsupported"));
    }

    #[test]
    fn unterminated_array_is_an_error() {
        assert!(Config::parse("[x]\nk = [\"a\",\n\"b\"\n").is_err());
    }
}
