//! DL001 — seam coverage: raw durability I/O must consult the failpoint
//! seam.
//!
//! The crash-consistency torture harness (`tests/torture_store.rs`) can
//! only exercise write paths that route through `disassoc_store::failpoints`
//! / `disassoc_faults`.  A raw `fs::rename`, `File::create`, `write_all`,
//! `sync_all`, or `sync_data` on a durability path silently shrinks the
//! torture matrix — exactly how the CLI's flat-file publication rename went
//! untested for three PRs.
//!
//! A raw call is **covered** when the enclosing `fn` item consults the seam
//! (a `faults`, `failpoints`, or `disassoc_faults` path segment) **at or
//! before the call's line**: the seam idiom is one `check_at`/`write_all_at`
//! guarding the handful of writes that follow it, so function granularity
//! with a before-the-call ordering check matches how the store is actually
//! written — and a failpoint armed only *after* an I/O can never crash it,
//! which is exactly how the CLI's publication renames hid inside a large
//! dispatch function that consulted the seam in a later match arm.
//! `File::create` alone gets a short forward grace window: creating a
//! staging file is not a commit point, and the seam consult guarding the
//! writes that follow exposes its crash state.  Pure
//! encoding helpers over generic writers belong in `allow_modules`; a
//! genuinely seam-free call needs a `// lint:allow(seam, "...")` with its
//! justification.

use super::{is_ident, is_punct, preceded_by, FileCtx};
use crate::diag::Finding;
use crate::lexer::TokenKind;

/// Rule id.
pub const ID: &str = "DL001";

/// Identifiers that prove the enclosing function consults the seam.
const SEAM_MARKS: &[&str] = &["faults", "failpoints", "disassoc_faults"];

/// Method-style raw calls (matched as `.name(` or `::name(`).
const RAW_METHODS: &[&str] = &["write_all", "sync_all", "sync_data"];

/// Forward grace window (in lines) for `File::create`: a create whose
/// guarded write consults the seam within this many lines below counts as
/// covered.  Commit-point operations get no grace — their seam consult must
/// come first, or an armed failpoint could never crash them.
const CREATE_GRACE_LINES: u32 = 3;

/// Checks one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    for i in 0..tokens.len() {
        if ctx.is_test(i) {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let (call, grace) = match t.text.as_str() {
            "rename" if is_punct(tokens, i + 1, "(") && path_is(tokens, i, "fs") => {
                ("fs::rename", 0)
            }
            // Creating a staging file is not a commit point; the seam
            // consult guarding the writes that follow (idiomatically on the
            // next line) exposes the created-but-empty crash state, so a
            // short forward grace window keeps the two-phase idiom clean.
            "create" if is_punct(tokens, i + 1, "(") && path_is(tokens, i, "File") => {
                ("File::create", CREATE_GRACE_LINES)
            }
            name if RAW_METHODS.contains(&name)
                && is_punct(tokens, i + 1, "(")
                && preceded_by(tokens, i, &[".", "::"]) =>
            {
                (name, 0)
            }
            _ => continue,
        };
        if covered(ctx, i, grace) {
            continue;
        }
        out.push(Finding {
            rule: ID,
            file: ctx.rel.to_string(),
            line: t.line,
            col: t.col,
            message: format!(
                "raw `{call}` outside the failpoint seam: the enclosing function never \
                 consults `disassoc_store::failpoints`, so the torture matrix cannot \
                 crash this write path"
            ),
            help: "guard it with `faults::check_at`/`faults::write_all_at` on a named \
                   failpoint site, or annotate `// lint:allow(seam, \"why this write \
                   needs no crash coverage\")`"
                .into(),
        });
    }
}

/// True when `tokens[i]` is reached through `qualifier::` (e.g. `fs::rename`).
fn path_is(tokens: &[crate::lexer::Token], i: usize, qualifier: &str) -> bool {
    i >= 2 && is_punct(tokens, i - 1, "::") && is_ident(tokens, i - 2, qualifier)
}

/// True when the innermost enclosing `fn` item mentions the seam at or
/// before the raw call's line (plus the call's forward `grace` window).  A
/// seam consult that only happens *later* in the function (e.g. a
/// different match arm of a large dispatcher) cannot have guarded this
/// I/O, so it does not count.
fn covered(ctx: &FileCtx<'_>, i: usize, grace: u32) -> bool {
    let Some((start, end)) = ctx.structure.enclosing_fn(i) else {
        return false;
    };
    let limit = ctx.lexed.tokens[i].line + grace;
    ctx.lexed.tokens[start..end].iter().any(|t| {
        t.line <= limit && t.kind == TokenKind::Ident && SEAM_MARKS.contains(&t.text.as_str())
    })
}
