//! DL005 — nondeterminism guard.
//!
//! The workspace's two strongest guarantees are *byte-identical
//! publication* (any thread count, any batching) and *seeded
//! reproducibility* (torture schedules, generators).  Both die the moment
//! a wall clock or OS randomness leaks into an output-affecting path, and
//! such leaks are invisible in review — `Instant::now()` looks harmless.
//!
//! Shipped code may read clocks only in allowlisted timing modules
//! (tracing timestamps, serve deadlines) or under an explicit
//! `// lint:allow(nondeterminism, "...")` stating why the value never
//! reaches published bytes.  Test code is exempt.

use super::{is_ident, is_punct, FileCtx};
use crate::diag::Finding;
use crate::lexer::TokenKind;

/// Rule id.
pub const ID: &str = "DL005";

/// `Type::method` pairs that read a wall clock.
const CLOCK_CALLS: &[(&str, &str)] = &[("Instant", "now"), ("SystemTime", "now")];

/// Bare identifiers that reach for OS randomness.
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Checks one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if ctx.is_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let what = if let Some((ty, method)) = CLOCK_CALLS
            .iter()
            .find(|(ty, _)| *ty == t.text)
            .filter(|(_, method)| is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, method))
        {
            format!("{ty}::{method}()")
        } else if ENTROPY_IDENTS.contains(&t.text.as_str()) {
            t.text.clone()
        } else {
            continue;
        };
        out.push(Finding {
            rule: ID,
            file: ctx.rel.to_string(),
            line: t.line,
            col: t.col,
            message: format!(
                "`{what}` in deterministic code: wall clocks and OS randomness break \
                 byte-identical publication and seeded reproducibility"
            ),
            help: "take the value as a parameter / use the seeded rng, move the code \
                   into an allowlisted timing module, or annotate \
                   `// lint:allow(nondeterminism, \"why this never affects output\")`"
                .into(),
        });
    }
}
