//! The rule catalog.
//!
//! Every rule is a pure function over one file's token stream plus the
//! pre-computed [`Structure`] summary; the engine in
//! [`crate::Linter`] handles path scoping, module allowlists, and
//! `lint:allow` suppression so rules only report raw violations.
//!
//! | id    | key            | invariant                                           |
//! |-------|----------------|-----------------------------------------------------|
//! | DL001 | seam           | raw durability I/O goes through the failpoint seam  |
//! | DL002 | shim           | deprecated shims stay quarantined                   |
//! | DL003 | panic          | no unannotated panics in shipped library code       |
//! | DL004 | obs-name       | obs instrument names live in one canonical registry |
//! | DL005 | nondeterminism | no wall clocks / OS randomness in deterministic code|

pub mod nondet;
pub mod obs_names;
pub mod panics;
pub mod seam;
pub mod shim;

use crate::analyze::Structure;
use crate::lexer::{Lexed, Token, TokenKind};

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel: &'a str,
    /// True for files under a `tests/` or `benches/` directory.
    pub is_test_file: bool,
    /// The lexed token stream and comments.
    pub lexed: &'a Lexed,
    /// Function extents, test regions, annotations.
    pub structure: &'a Structure,
}

impl FileCtx<'_> {
    /// True when token `i` belongs to test code (test file or test item).
    pub fn is_test(&self, i: usize) -> bool {
        self.is_test_file || self.structure.is_test_token(i)
    }
}

/// All rule ids, in catalog order.
pub const ALL_RULES: &[&str] = &[seam::ID, shim::ID, panics::ID, obs_names::ID, nondet::ID];

/// The `lint:allow` key for a rule id.
pub fn key_for(id: &str) -> &'static str {
    match id {
        "DL001" => "seam",
        "DL002" => "shim",
        "DL003" => "panic",
        "DL004" => "obs-name",
        "DL005" => "nondeterminism",
        _ => "unknown",
    }
}

/// True when `tokens[i]` is an identifier with the given text.
pub(crate) fn is_ident(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

/// True when `tokens[i]` is the given punctuation.
pub(crate) fn is_punct(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// True when the token before `i` is one of the given punctuations.
pub(crate) fn preceded_by(tokens: &[Token], i: usize, any: &[&str]) -> bool {
    i > 0
        && tokens
            .get(i - 1)
            .is_some_and(|t| t.kind == TokenKind::Punct && any.contains(&t.text.as_str()))
}
