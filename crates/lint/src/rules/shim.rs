//! DL002 — deprecated-shim quarantine.
//!
//! The PR 2 `stream` compatibility shims are deprecated and live, with
//! their parity tests, in `crates/core/src/stream.rs`; the `Pipeline` API
//! is the only supported entry point.  Any new reference to a banned
//! identifier outside the quarantine modules re-opens a retired API.
//!
//! This replaces the CI shell grep, and improves on it: a banned name in a
//! comment, doc example, or string no longer trips the check, while a real
//! identifier use always does — even when the grep's `-v` path filters
//! would have missed a new quarantine escape route.

use super::FileCtx;
use crate::diag::Finding;
use crate::lexer::TokenKind;

/// Rule id.
pub const ID: &str = "DL002";

/// Checks one file against the configured `banned` identifier list.
pub fn check(ctx: &FileCtx<'_>, banned: &[String], out: &mut Vec<Finding>) {
    for t in &ctx.lexed.tokens {
        if t.kind != TokenKind::Ident || !banned.iter().any(|b| b == &t.text) {
            continue;
        }
        out.push(Finding {
            rule: ID,
            file: ctx.rel.to_string(),
            line: t.line,
            col: t.col,
            message: format!("reference to the quarantined deprecated shim `{}`", t.text),
            help: "use the `Pipeline` builder API; the shims and their parity tests \
                   stay confined to the modules listed in `lint.toml` `[DL002] \
                   allow_modules`"
                .into(),
        });
    }
}
