//! DL004 — observability-name registry.
//!
//! Every obs instrument and trace name (`core.join_attempts`,
//! `refine.pass_cap`, ...) is a stable identifier: `--metrics-out` files,
//! bench JSON assertions, the README counter table, and integration tests
//! all key off the literal string.  The canonical definitions live in the
//! registry modules (`crates/obs/src/metrics.rs` catalogs and
//! `crates/obs/src/names.rs` trace names); a name literal anywhere else
//! that is missing from the registry is drift — usually a typo in an
//! assertion that would silently always fail, or a new instrument minted
//! outside the catalog.
//!
//! Two checks:
//! 1. any string literal shaped like an obs name (`prefix.snake_case`,
//!    exactly one dot, prefix in the configured list) must be registered —
//!    except literals whose post-dot segment is a configured
//!    `ignore_suffixes` file extension (`store.json` is a filename, not an
//!    instrument);
//! 2. `Counter::new` / `Gauge::new` / `Histogram::new` may only appear in
//!    a registry module.

use super::{is_ident, is_punct, FileCtx};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

/// Rule id.
pub const ID: &str = "DL004";

/// The instrument constructors confined to the registry.
const CONSTRUCTORS: &[&str] = &["Counter", "Gauge", "Histogram"];

/// True when `text` is shaped like an obs name under the given prefixes:
/// `prefix.segment` with exactly one dot and `[a-z0-9_]` segments.
pub fn is_name_shaped(text: &str, prefixes: &[String]) -> bool {
    let Some((prefix, rest)) = text.split_once('.') else {
        return false;
    };
    !rest.is_empty()
        && !rest.contains('.')
        && prefixes.iter().any(|p| p == prefix)
        && rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Checks one file against the registered-name set.
pub fn check(
    ctx: &FileCtx<'_>,
    prefixes: &[String],
    ignore_suffixes: &[String],
    registry: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let tokens = &ctx.lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Str => {
                // Escapes never appear in real names; skip anything escaped.
                if t.text.contains('\\') || !is_name_shaped(&t.text, prefixes) {
                    continue;
                }
                // `store.json` etc. are filenames, not instruments.
                if t.text
                    .rsplit_once('.')
                    .is_some_and(|(_, ext)| ignore_suffixes.iter().any(|s| s == ext))
                {
                    continue;
                }
                if registry.contains(&t.text) {
                    continue;
                }
                out.push(Finding {
                    rule: ID,
                    file: ctx.rel.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "obs name `{}` is not in the canonical registry — drift between \
                         this literal and the catalog",
                        t.text
                    ),
                    help: "register it in the `[DL004] registry` modules (obs metrics \
                           catalog / trace names) or fix the typo; never mint instrument \
                           names inline"
                        .into(),
                });
            }
            TokenKind::Ident
                if CONSTRUCTORS.contains(&t.text.as_str())
                    && is_punct(tokens, i + 1, "::")
                    && is_ident(tokens, i + 2, "new") =>
            {
                out.push(Finding {
                    rule: ID,
                    file: ctx.rel.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}::new` outside the registry module: instruments must be \
                         declared in the canonical catalog",
                        t.text
                    ),
                    help: "add the instrument to the catalog in `crates/obs/src/metrics.rs` \
                           and reference it from there"
                        .into(),
                });
            }
            _ => {}
        }
    }
}
