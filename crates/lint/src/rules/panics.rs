//! DL003 — panic-path policy for shipped library code.
//!
//! `unwrap`, `expect`, `panic!`, and `unreachable!` in non-test library
//! code either encode a proven invariant — in which case the proof belongs
//! next to the call as `// lint:allow(panic, "reason")` — or they are a
//! latent crash on a fallible path and must become a typed error.  Test
//! code (both `#[cfg(test)]` items and files under `tests/`) is exempt:
//! panicking is how tests fail.

use super::{is_punct, preceded_by, FileCtx};
use crate::diag::Finding;
use crate::lexer::TokenKind;

/// Rule id.
pub const ID: &str = "DL003";

/// Checks one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    for i in 0..tokens.len() {
        if ctx.is_test(i) {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "unwrap" | "expect"
                if preceded_by(tokens, i, &["."]) && is_punct(tokens, i + 1, "(") =>
            {
                format!(".{}()", t.text)
            }
            "panic" | "unreachable" if is_punct(tokens, i + 1, "!") => {
                format!("{}!", t.text)
            }
            _ => continue,
        };
        out.push(Finding {
            rule: ID,
            file: ctx.rel.to_string(),
            line: t.line,
            col: t.col,
            message: format!("`{what}` in non-test library code without a panic annotation"),
            help: "convert a fallible path to a typed error, or prove the invariant \
                   with `// lint:allow(panic, \"why this cannot fire\")`"
                .into(),
        });
    }
}
