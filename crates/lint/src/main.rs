//! `disassoc-lint` — run the workspace invariant checker.
//!
//! ```text
//! disassoc-lint [--root DIR] [--json] [--quiet]
//! ```
//!
//! Exit codes follow the workspace CLI convention: `0` clean, `1`
//! findings, `2` usage/configuration error.  A bench-style honesty line
//! (rule count, files scanned, wall time) always goes to stderr so the
//! cost of the lint gate stays visible in CI logs.

use disassoc_lint::{lint_workspace, LintError};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut json = false;
    let mut quiet = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let v = argv.next().ok_or("--root needs a directory argument")?;
                root = Some(PathBuf::from(v));
            }
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                return Err("usage: disassoc-lint [--root DIR] [--json] [--quiet]".into())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        root: root.unwrap_or_else(|| PathBuf::from(".")),
        json,
        quiet,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    // lint:allow(nondeterminism, "honesty-line wall time only; diagnostics are time-independent")
    let t0 = std::time::Instant::now();
    let report = match lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e @ LintError::Config(_)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let wall = t0.elapsed().as_secs_f64();
    if args.json {
        print!("{}", report.to_json(wall));
    } else if !args.quiet {
        for f in &report.findings {
            println!("{}", f.render());
        }
    }
    eprintln!(
        "disassoc-lint: {} rules, {} files scanned, {} finding{} in {:.2}s",
        report.rules_run,
        report.files_scanned,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        wall
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
