//! Workspace file walker: enumerates the `.rs` files to lint.
//!
//! Walks the configured roots, skips excluded prefixes plus `target`/`.git`
//! directories anywhere, and classifies each file as test or library code
//! from its path (any `tests` or `benches` component).  The result is
//! sorted so every run — and the `--json` diagnostics artifact — is
//! deterministic.

use std::io;
use std::path::{Path, PathBuf};

/// One file selected for linting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// True when every item in the file is test code by location.
    pub is_test: bool,
}

/// Directory names never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Collects all `.rs` files under `roots` (relative to `root`), excluding
/// any whose relative path starts with an entry of `exclude`.
pub fn collect(root: &Path, roots: &[String], exclude: &[String]) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for r in roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk(root, &dir, exclude, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, exclude: &[String], out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(rel) = relative(root, &path) else {
            continue;
        };
        if exclude
            .iter()
            .any(|e| rel == *e || rel.starts_with(&format!("{e}/")))
        {
            continue;
        }
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            let name = entry.file_name();
            if SKIP_DIRS.iter().any(|s| name.to_string_lossy() == *s) {
                continue;
            }
            walk(root, &path, exclude, out)?;
        } else if file_type.is_file() && rel.ends_with(".rs") {
            let is_test = rel
                .split('/')
                .any(|component| component == "tests" || component == "benches");
            out.push(SourceFile { rel, is_test });
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated; `None` for foreign paths.
fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut s = String::new();
    for c in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&c.as_os_str().to_string_lossy());
    }
    Some(s)
}

/// Converts a workspace-relative `/`-separated path to a real [`PathBuf`].
pub fn to_path(root: &Path, rel: &str) -> PathBuf {
    let mut p = root.to_path_buf();
    for part in rel.split('/') {
        p.push(part);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_sorted_and_classified() {
        let dir = std::env::temp_dir().join(format!("lint_walker_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        for sub in ["crates/x/src", "crates/x/tests", "crates/x/tests/fixtures"] {
            std::fs::create_dir_all(dir.join(sub)).unwrap();
        }
        std::fs::write(dir.join("crates/x/src/lib.rs"), "").unwrap();
        std::fs::write(dir.join("crates/x/tests/it.rs"), "").unwrap();
        std::fs::write(dir.join("crates/x/tests/fixtures/f.rs"), "").unwrap();
        std::fs::write(dir.join("crates/x/src/notes.txt"), "").unwrap();

        let files = collect(
            &dir,
            &["crates".into()],
            &["crates/x/tests/fixtures".into()],
        )
        .unwrap();
        assert_eq!(
            files,
            vec![
                SourceFile {
                    rel: "crates/x/src/lib.rs".into(),
                    is_test: false
                },
                SourceFile {
                    rel: "crates/x/tests/it.rs".into(),
                    is_test: true
                },
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
