//! # disassoc-lint — workspace invariant checker
//!
//! A zero-dependency static-analysis pass over the workspace's Rust
//! sources, in the workspace's own style: a hand-rolled lexer
//! ([`lexer`]), a module/`cfg(test)`-aware walker ([`walker`] +
//! [`analyze`]), and a rule engine ([`rules`]) emitting rustc-style
//! `file:line:col: error[DL0xx]` diagnostics ([`diag`]) plus a `--json`
//! machine-readable mode.
//!
//! The rules promote what used to be brittle CI shell greps (and one known
//! coverage gap) into systematic checks:
//!
//! - **DL001 seam coverage** — raw durability I/O must consult
//!   `disassoc_store::failpoints`, so the torture matrix can crash it;
//! - **DL002 shim quarantine** — the deprecated PR 2 `stream` shims stay
//!   confined to their modules;
//! - **DL003 panic policy** — `unwrap`/`expect`/`panic!`/`unreachable!`
//!   in shipped library code needs a `// lint:allow(panic, "reason")`;
//! - **DL004 obs-name registry** — instrument/trace name literals must
//!   exist in the canonical obs registry modules;
//! - **DL005 nondeterminism guard** — no wall clocks or OS randomness
//!   outside allowlisted timing modules.
//!
//! Configuration lives in the workspace-root `lint.toml` ([`config`]);
//! per-line escape hatches are `// lint:allow(key, "reason")` comments —
//! the reason is mandatory.  The whole workspace self-lints clean
//! (`crates/lint/tests/self_lint.rs`), so every allowance in tree carries
//! its justification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walker;

pub use config::{Config, ConfigError};
pub use diag::{Finding, Report};

use rules::FileCtx;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// A lint-run failure (not a finding: findings are data, this is broken
/// input — unreadable files or a bad configuration).
#[derive(Debug)]
pub enum LintError {
    /// `lint.toml` problems.
    Config(ConfigError),
    /// A file could not be read.
    Io(PathBuf, std::io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Config(e) => write!(f, "{e}"),
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Config(e) => Some(e),
            LintError::Io(_, e) => Some(e),
        }
    }
}

impl From<ConfigError> for LintError {
    fn from(e: ConfigError) -> Self {
        LintError::Config(e)
    }
}

/// The configured engine: rule scopes plus the loaded obs-name registry.
pub struct Linter {
    root: PathBuf,
    cfg: Config,
    registry: BTreeSet<String>,
    registry_files: Vec<String>,
}

impl Linter {
    /// Builds a linter for the workspace at `root` from its configuration,
    /// loading the DL004 registry modules.
    pub fn new(root: &Path, cfg: Config) -> Result<Linter, LintError> {
        for section in cfg.section_names() {
            let known = section == "workspace" || rules::ALL_RULES.contains(&section);
            if !known {
                return Err(ConfigError {
                    line: 0,
                    message: format!("unknown section [{section}]"),
                }
                .into());
            }
        }
        let registry_files = cfg.list(rules::obs_names::ID, "registry");
        let prefixes = cfg.list(rules::obs_names::ID, "prefixes");
        let mut registry = BTreeSet::new();
        for rel in &registry_files {
            let path = walker::to_path(root, rel);
            let text = std::fs::read_to_string(&path).map_err(|e| LintError::Io(path, e))?;
            for t in lexer::lex(&text).tokens {
                if t.kind == lexer::TokenKind::Str
                    && rules::obs_names::is_name_shaped(&t.text, &prefixes)
                {
                    registry.insert(t.text);
                }
            }
        }
        Ok(Linter {
            root: root.to_path_buf(),
            cfg,
            registry,
            registry_files,
        })
    }

    /// The registered obs names (for tests and tooling).
    pub fn registry(&self) -> &BTreeSet<String> {
        &self.registry
    }

    /// Lints the whole workspace per the configured roots.
    pub fn run(&self) -> Result<Report, LintError> {
        let roots = self.cfg.list("workspace", "roots");
        let exclude = self.cfg.list("workspace", "exclude");
        let files = walker::collect(&self.root, &roots, &exclude)
            .map_err(|e| LintError::Io(self.root.clone(), e))?;
        let mut report = Report {
            findings: Vec::new(),
            files_scanned: files.len(),
            rules_run: rules::ALL_RULES
                .iter()
                .filter(|r| self.rule_enabled(r))
                .count(),
        };
        for file in &files {
            let path = walker::to_path(&self.root, &file.rel);
            let text =
                std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
            report
                .findings
                .extend(self.lint_source(&file.rel, file.is_test, &text));
        }
        report.sort();
        Ok(report)
    }

    /// Lints a single source text as workspace-relative `rel`.  This is the
    /// fixture-testing entry point; `is_test_file` mirrors what the walker
    /// would derive from the path.
    pub fn lint_source(&self, rel: &str, is_test_file: bool, text: &str) -> Vec<Finding> {
        let lexed = lexer::lex(text);
        let structure = analyze::analyze(&lexed);
        let ctx = FileCtx {
            rel,
            is_test_file,
            lexed: &lexed,
            structure: &structure,
        };
        let mut raw = Vec::new();
        if self.applies(rules::seam::ID, rel) {
            rules::seam::check(&ctx, &mut raw);
        }
        if self.applies(rules::shim::ID, rel) {
            let banned = self.cfg.list(rules::shim::ID, "banned");
            rules::shim::check(&ctx, &banned, &mut raw);
        }
        if self.applies(rules::panics::ID, rel) {
            rules::panics::check(&ctx, &mut raw);
        }
        if self.applies(rules::obs_names::ID, rel) && !self.is_registry_file(rel) {
            let prefixes = self.cfg.list(rules::obs_names::ID, "prefixes");
            let ignore_suffixes = self.cfg.list(rules::obs_names::ID, "ignore_suffixes");
            rules::obs_names::check(&ctx, &prefixes, &ignore_suffixes, &self.registry, &mut raw);
        }
        if self.applies(rules::nondet::ID, rel) {
            rules::nondet::check(&ctx, &mut raw);
        }
        // Central suppression: a finding survives unless a well-formed
        // annotation for its rule covers its line.
        raw.retain(|f| !structure.allowed(rules::key_for(f.rule), f.rule, f.line));
        raw
    }

    fn rule_enabled(&self, rule: &str) -> bool {
        self.cfg.flag(rule, "enabled", true)
    }

    /// Whether `rule` runs on `rel`: enabled, inside the rule's `paths`
    /// scope (empty = everywhere), and not in its `allow_modules`.
    fn applies(&self, rule: &str, rel: &str) -> bool {
        if !self.rule_enabled(rule) {
            return false;
        }
        let paths = self.cfg.list(rule, "paths");
        if !paths.is_empty()
            && !paths
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            return false;
        }
        !self
            .cfg
            .list(rule, "allow_modules")
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
    }

    fn is_registry_file(&self, rel: &str) -> bool {
        self.registry_files.iter().any(|f| f == rel)
    }
}

/// Convenience: load `root/lint.toml` and lint the workspace.
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    let cfg = Config::load(root)?;
    Linter::new(root, cfg)?.run()
}
