//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The rules in this crate reason about *token* streams, never raw text, so
//! a `fs::rename` inside a string literal, a doc example, or a comment can
//! never trip a lint — the exact false positives the old CI shell greps
//! could not avoid.  The lexer understands:
//!
//! - line (`//`) and nested block (`/* /* */ */`) comments, kept separately
//!   because `// lint:allow(...)` annotations live in them;
//! - string, raw string (`r#".."#`), byte string, and char literals;
//! - the `'a` lifetime vs `'a'` char-literal ambiguity;
//! - identifiers (including raw `r#ident`), numbers, and punctuation, with
//!   `::` fused into one token because every rule matches paths.
//!
//! It does **not** build an AST: rules that need structure (function
//! extents, `#[cfg(test)]` regions) derive it from the token stream in
//! [`crate::analyze`].

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `rename`, `r#async` → `async`).
    Ident,
    /// A string or byte-string literal; `text` holds the *inner* bytes,
    /// escapes undecoded (registry names never contain escapes).
    Str,
    /// A char literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// A numeric literal (possibly split around `.`, which rules ignore).
    Num,
    /// Punctuation; one char per token except the fused `::`.
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is stored per kind).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// A comment, kept for `lint:allow` annotation parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without the `//`, `///`, or `/* */` framing.
    pub text: String,
}

/// A lexed source file: code tokens plus the comments between them.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments.  Unterminated literals are closed
/// at end of file rather than reported: the linter's job is invariants, not
/// syntax — rustc owns real syntax errors.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        cur.bump();
                        let mut text = String::new();
                        while let Some(c) = cur.peek() {
                            if c == '\n' {
                                break;
                            }
                            text.push(c);
                            cur.bump();
                        }
                        out.comments.push(Comment { line, text });
                    }
                    Some('*') => {
                        cur.bump();
                        let mut depth = 1usize;
                        let mut text = String::new();
                        while depth > 0 {
                            match cur.bump() {
                                Some('*') if cur.peek() == Some('/') => {
                                    cur.bump();
                                    depth -= 1;
                                    if depth > 0 {
                                        text.push_str("*/");
                                    }
                                }
                                Some('/') if cur.peek() == Some('*') => {
                                    cur.bump();
                                    depth += 1;
                                    text.push_str("/*");
                                }
                                Some(c) => text.push(c),
                                None => break,
                            }
                        }
                        out.comments.push(Comment { line, text });
                    }
                    _ => out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: "/".into(),
                        line,
                        col,
                    }),
                }
            }
            '"' => {
                cur.bump();
                let text = lex_quoted(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            '\'' => {
                cur.bump();
                lex_tick(&mut cur, line, col, &mut out.tokens);
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    text,
                    line,
                    col,
                });
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                // String-prefix forms: r".."/r#".."#, b"..", br#".."#, and
                // the raw identifier r#ident.
                let next = cur.peek();
                let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
                if is_str_prefix && (next == Some('"') || next == Some('#')) {
                    let raw = text != "b";
                    if next == Some('#') && !raw {
                        // `b#` is not a literal prefix; emit the ident.
                    } else if next == Some('#') {
                        // Count hashes; `r#ident` (hash then ident start)
                        // is a raw identifier, not a raw string.
                        let mut hashes = 0usize;
                        while cur.peek() == Some('#') {
                            hashes += 1;
                            cur.bump();
                        }
                        if cur.peek() == Some('"') {
                            cur.bump();
                            let value = lex_raw(&mut cur, hashes);
                            out.tokens.push(Token {
                                kind: TokenKind::Str,
                                text: value,
                                line,
                                col,
                            });
                            continue;
                        }
                        if hashes == 1 && cur.peek().is_some_and(is_ident_start) {
                            let mut ident = String::new();
                            while let Some(c) = cur.peek() {
                                if is_ident_continue(c) {
                                    ident.push(c);
                                    cur.bump();
                                } else {
                                    break;
                                }
                            }
                            out.tokens.push(Token {
                                kind: TokenKind::Ident,
                                text: ident,
                                line,
                                col,
                            });
                            continue;
                        }
                        // Stray hashes: emit ident then hash puncts.
                        out.tokens.push(Token {
                            kind: TokenKind::Ident,
                            text,
                            line,
                            col,
                        });
                        for _ in 0..hashes {
                            out.tokens.push(Token {
                                kind: TokenKind::Punct,
                                text: "#".into(),
                                line,
                                col,
                            });
                        }
                        continue;
                    } else {
                        cur.bump(); // the opening quote
                        let value = if raw {
                            lex_raw(&mut cur, 0)
                        } else {
                            lex_quoted(&mut cur)
                        };
                        out.tokens.push(Token {
                            kind: TokenKind::Str,
                            text: value,
                            line,
                            col,
                        });
                        continue;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            ':' => {
                cur.bump();
                if cur.peek() == Some(':') {
                    cur.bump();
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: "::".into(),
                        line,
                        col,
                    });
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: ":".into(),
                        line,
                        col,
                    });
                }
            }
            c => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Consumes a `"`-quoted body (opening quote already consumed), handling
/// `\"` and `\\` escapes; returns the inner text with escapes undecoded.
fn lex_quoted(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            c => text.push(c),
        }
    }
    text
}

/// Consumes a raw-string body closed by `"` + `hashes` `#`s.
fn lex_raw(cur: &mut Cursor<'_>, hashes: usize) -> String {
    let mut text = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            // A candidate close: need `hashes` hash marks.
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                break 'outer;
            }
            text.push('"');
            for _ in 0..seen {
                text.push('#');
            }
            continue;
        }
        text.push(c);
    }
    text
}

/// Disambiguates `'` starts: lifetime (`'a`), char (`'a'`, `'\n'`), or a
/// stray quote.  The opening `'` is already consumed.
fn lex_tick(cur: &mut Cursor<'_>, line: u32, col: u32, tokens: &mut Vec<Token>) {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume `\`, the escape, then payload
            // up to the closing quote (covers `'\u{1F600}'`).
            let mut text = String::new();
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            tokens.push(Token {
                kind: TokenKind::Char,
                text,
                line,
                col,
            });
        }
        Some(c) if is_ident_start(c) => {
            let mut name = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    name.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: name,
                    line,
                    col,
                });
            } else {
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: name,
                    line,
                    col,
                });
            }
        }
        Some(c) => {
            // Non-ident char literal like `'.'` or `' '`.
            cur.bump();
            let text = c.to_string();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            tokens.push(Token {
                kind: TokenKind::Char,
                text,
                line,
                col,
            });
        }
        None => tokens.push(Token {
            kind: TokenKind::Punct,
            text: "'".into(),
            line,
            col,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_paths_and_calls() {
        let toks = kinds("std::fs::rename(a, b)?;");
        assert_eq!(toks[0], (TokenKind::Ident, "std".into()));
        assert_eq!(toks[1], (TokenKind::Punct, "::".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "fs".into()));
        assert_eq!(toks[4], (TokenKind::Ident, "rename".into()));
    }

    #[test]
    fn strings_hide_their_contents_from_token_rules() {
        let toks = kinds(r#"let x = "fs::rename inside a string";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "rename"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("fs::rename")));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lexed = lex("// lint:allow(seam, \"x\")\nfoo(); /* block\nspan */ bar();");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("lint:allow"));
        assert_eq!(lexed.comments[1].line, 2);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["foo", "bar"]);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c */ x");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "x");
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let s = r#"quote " inside"#; let r#fn = 1;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "quote \" inside"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn byte_and_plain_strings() {
        let toks = kinds(r#"w.write(b"raw bytes"); s.push("text");"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = kinds(r#"let s = "a \" b"; next"#);
        assert_eq!(toks[3], (TokenKind::Str, "a \\\" b".into()));
        assert_eq!(toks[5].1, "next");
    }

    #[test]
    fn line_and_column_positions() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
