//! DL001 regression fixture: the pre-fix shape of the CLI's flat-file
//! publication (condensed from `crates/cli/src/lib.rs` before the seam
//! routing).  One large dispatch function commits a publication with a raw
//! `fs::rename`, while a *later* match arm consults the fault registry —
//! the consult that made function-granularity coverage report this as
//! covered even though no armed failpoint could ever crash the rename.
//! The rule must flag both renames.

pub fn run(command: &Command, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    match command {
        Command::Anonymize { out_prefix, .. } => {
            let chunks_path = out_prefix.with_extension("chunks.json");
            let partial_path = out_prefix.with_extension("chunks.json.partial");
            write_partial(&partial_path)?;
            std::fs::rename(&partial_path, &chunks_path)?; // finding: raw commit point
            writeln!(out, "published chunks: {}", chunks_path.display())?;
            Ok(())
        }
        Command::Append { out_prefix, .. } => {
            if let Some(prefix) = out_prefix {
                let chunks_path = prefix.with_extension("chunks.json");
                let partial_path = prefix.with_extension("chunks.json.partial");
                write_partial(&partial_path)?;
                std::fs::rename(&partial_path, &chunks_path)?; // finding: raw commit point
            }
            Ok(())
        }
        Command::Serve { .. } => {
            // The seam consult lives here, two arms below the renames.
            disassoc_faults::arm_from_env().map_err(CliError::Usage)?;
            Ok(())
        }
    }
}
