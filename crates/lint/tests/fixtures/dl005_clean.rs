//! DL005 fixture: seeded randomness, annotated timing, and exempt tests.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn shuffle(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn timed() -> f64 {
    // lint:allow(nondeterminism, "elapsed-seconds reporting only; never reaches published bytes")
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_in_tests_are_fine() {
        let _ = std::time::Instant::now();
    }
}
