//! DL004 fixture: obs names minted or typo'd outside the registry.

pub fn record_metrics() {
    inc("core.join_attemps"); // finding: typo'd counter name
    inc("store.mystery_counter"); // finding: never registered
    // finding: instrument constructed outside the registry module
    static LOCAL: Counter = Counter::new("core.local", "local counter");
    LOCAL.inc();
}
