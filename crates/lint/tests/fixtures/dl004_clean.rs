//! DL004 fixture: only registered names, filename-shaped literals, and
//! out-of-family strings.

pub fn record_metrics() {
    inc("core.anonymize_runs"); // registered in the obs catalog
    let manifest = "store.json"; // filename, not an instrument
    let other = "unknown_prefix.whatever"; // prefix not in the obs family
    let _ = (manifest, other);
}
