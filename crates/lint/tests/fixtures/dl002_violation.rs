//! DL002 fixture: deprecated stream-shim identifiers outside quarantine.

pub fn run(records: Vec<Vec<u32>>) -> usize {
    let summary: StreamSummary = stream_anonymize(records); // findings: both idents
    let batches = dataset_batches(&summary); // finding: dataset_batches
    batches
}
