//! DL005 fixture: wall clocks and OS randomness in deterministic code.

pub fn stamp() -> u64 {
    let t = std::time::Instant::now(); // finding: Instant::now
    let s = std::time::SystemTime::now(); // finding: SystemTime::now
    let mut rng = rand::thread_rng(); // finding: thread_rng
    let _ = (t, s, &mut rng);
    0
}
