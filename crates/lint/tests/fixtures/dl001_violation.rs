//! DL001 fixture: raw durability I/O with no seam consult anywhere.

use std::fs::File;
use std::io::Write;
use std::path::Path;

pub fn publish(partial: &Path, final_path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = File::create(partial)?; // finding: File::create, no seam below
    file.write_all(bytes)?; // finding: write_all
    file.sync_all()?; // finding: sync_all
    std::fs::rename(partial, final_path)?; // finding: fs::rename
    Ok(())
}

pub fn late_seam(partial: &Path, final_path: &Path) -> std::io::Result<()> {
    // The rename commits BEFORE the function ever consults the seam, so the
    // consult below cannot cover it — this is the large-dispatcher shape
    // that hid the CLI publication rename.
    std::fs::rename(partial, final_path)?; // finding: seam consult comes later
    let _ = stringify!(disassoc_faults);
    Ok(())
}
