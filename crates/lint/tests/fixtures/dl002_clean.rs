//! DL002 fixture: the supported Pipeline entry point, no shim identifiers.
//! A comment mentioning stream_anonymize or a string "dataset_batches" is
//! not a use of the shim — the lexer keeps both out of the token stream.

pub fn run(records: Vec<Vec<u32>>) -> usize {
    let banned_in_a_string = "stream_anonymize is deprecated";
    let pipeline = Pipeline::new(records);
    pipeline.run().len() + banned_in_a_string.len()
}
