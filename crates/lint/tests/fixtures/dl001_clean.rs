//! DL001 fixture: the same publication shape, correctly seam-covered.

use std::fs::File;
use std::io::Write;
use std::path::Path;

pub fn publish(partial: &Path, final_path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    failpoints::check_at("cli.publish.stage", partial)?;
    let mut file = File::create(partial)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    std::fs::rename(partial, final_path)?;
    Ok(())
}

pub fn staged_create(partial: &Path, bytes: &[u8]) -> std::io::Result<()> {
    // The create precedes its seam consult by one line — the two-phase
    // staging idiom the forward grace window exists for.
    let mut file = File::create(partial)?;
    faults::write_all_at("cli.publish.stage.write", partial, &mut file, bytes)?;
    Ok(())
}

pub fn annotated(path: &Path) -> std::io::Result<()> {
    let file = File::open(path)?;
    // lint:allow(seam, "read-side metadata sync needs no crash coverage")
    file.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let dir = std::env::temp_dir().join("dl001_clean");
        std::fs::rename(dir.join("a"), dir.join("b")).ok();
    }
}
