//! DL003 fixture: panic paths either annotated with their proof or behind
//! typed errors; test code exempt.

pub fn parse(input: &str) -> Result<u64, std::num::ParseIntError> {
    let n = input.parse::<u64>()?;
    // lint:allow(panic, "n parsed from a non-empty numeral, so a first char exists")
    let first = input.chars().next().expect("non-empty");
    let _ = first;
    Ok(n)
}

pub fn fixed_width(bytes: &[u8; 8]) -> u64 {
    // lint:allow(panic, "fixed 8-byte array slice")
    u64::from_le_bytes(bytes[..8].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(parse("7").unwrap(), 7);
    }
}
