//! DL003 fixture: unannotated panic paths in library code.

pub fn parse(input: &str) -> u64 {
    let n = input.parse::<u64>().unwrap(); // finding: unwrap
    let first = input.chars().next().expect("non-empty"); // finding: expect
    if first == 'x' {
        panic!("x is not allowed"); // finding: panic!
    }
    match n {
        0 => unreachable!("zero was filtered"), // finding: unreachable!
        other => other,
    }
}
