//! Rule-level tests against the fixture corpora: every seeded violation in
//! a `*_violation.rs` fixture is detected, every `*_clean.rs` fixture comes
//! back empty, and the DL001 regression fixture (the pre-fix CLI rename)
//! stays pinned.
//!
//! Fixtures are lint *inputs*, not compiled code — they live in
//! `tests/fixtures/`, which the workspace lint config excludes, and are read
//! from disk here rather than inlined so their seeded violations can never
//! leak into the self-lint scan of this file.

use disassoc_lint::{Config, Finding, Linter};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn linter() -> Linter {
    let root = workspace_root();
    let cfg = Config::load(&root).expect("workspace lint.toml loads");
    Linter::new(&root, cfg).expect("linter builds against the workspace registry")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Lints `name` as if it lived at `rel` inside the workspace (non-test).
fn lint_fixture(name: &str, rel: &str) -> Vec<Finding> {
    linter().lint_source(rel, false, &fixture(name))
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn dl001_flags_every_raw_call_and_the_late_seam() {
    let findings = lint_fixture("dl001_violation.rs", "crates/cli/src/fixture.rs");
    assert_eq!(rules_of(&findings), vec!["DL001"; 5], "{findings:#?}");
    // The late-seam function: a consult after the rename does not cover it.
    assert!(
        findings.iter().any(|f| f.message.contains("fs::rename")),
        "{findings:#?}"
    );
}

#[test]
fn dl001_clean_staging_idiom_and_annotations_pass() {
    let findings = lint_fixture("dl001_clean.rs", "crates/cli/src/fixture.rs");
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn dl001_regression_pre_fix_cli_rename_is_flagged() {
    // The exact shape that went untested for three PRs: raw renames inside
    // a large dispatcher whose seam consult sits in a later match arm.
    let findings = lint_fixture("dl001_cli_regression.rs", "crates/cli/src/lib.rs");
    assert_eq!(rules_of(&findings), vec!["DL001", "DL001"], "{findings:#?}");
    assert!(
        findings.iter().all(|f| f.message.contains("fs::rename")),
        "{findings:#?}"
    );
}

#[test]
fn dl002_flags_shim_identifiers_outside_quarantine() {
    let findings = lint_fixture("dl002_violation.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&findings), vec!["DL002"; 3], "{findings:#?}");
}

#[test]
fn dl002_clean_comments_and_strings_do_not_count() {
    let findings = lint_fixture("dl002_clean.rs", "crates/core/src/fixture.rs");
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn dl002_quarantine_modules_are_exempt() {
    let findings = lint_fixture("dl002_violation.rs", "crates/core/src/stream.rs");
    assert!(!findings.iter().any(|f| f.rule == "DL002"), "{findings:#?}");
}

#[test]
fn dl003_flags_all_four_panic_forms() {
    let findings = lint_fixture("dl003_violation.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&findings), vec!["DL003"; 4], "{findings:#?}");
}

#[test]
fn dl003_clean_annotations_and_tests_pass() {
    let findings = lint_fixture("dl003_clean.rs", "crates/core/src/fixture.rs");
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn dl003_out_of_scope_crates_are_exempt() {
    let findings = lint_fixture("dl003_violation.rs", "crates/datagen/src/fixture.rs");
    assert!(!findings.iter().any(|f| f.rule == "DL003"), "{findings:#?}");
}

#[test]
fn dl004_flags_unregistered_names_and_stray_constructors() {
    let findings = lint_fixture("dl004_violation.rs", "crates/obs/src/fixture.rs");
    // Three unregistered name literals (one a typo of a real counter) plus
    // one instrument constructor outside the registry.
    assert_eq!(rules_of(&findings), vec!["DL004"; 4], "{findings:#?}");
}

#[test]
fn dl004_clean_registered_names_filenames_and_foreign_prefixes_pass() {
    let findings = lint_fixture("dl004_clean.rs", "crates/obs/src/fixture.rs");
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn dl004_applies_to_test_files_too() {
    // Name drift in an assertion is exactly the test-file failure mode.
    let findings = linter().lint_source("tests/fixture.rs", true, &fixture("dl004_violation.rs"));
    assert!(findings.iter().any(|f| f.rule == "DL004"), "{findings:#?}");
}

#[test]
fn dl005_flags_clocks_and_entropy() {
    let findings = lint_fixture("dl005_violation.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&findings), vec!["DL005"; 3], "{findings:#?}");
}

#[test]
fn dl005_clean_seeded_rngs_and_annotated_timing_pass() {
    let findings = lint_fixture("dl005_clean.rs", "crates/core/src/fixture.rs");
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn dl005_allowlisted_timing_modules_are_exempt() {
    let findings = lint_fixture("dl005_violation.rs", "crates/serve/src/retry.rs");
    assert!(!findings.iter().any(|f| f.rule == "DL005"), "{findings:#?}");
}

#[test]
fn the_registry_holds_catalog_and_trace_names() {
    let linter = linter();
    let registry = linter.registry();
    assert!(registry.contains("core.anonymize_runs"), "catalog counter");
    assert!(registry.contains("core.anonymize"), "trace event name");
    assert!(registry.contains("refine.pass_cap"), "warning name");
    assert!(registry.len() >= 20, "registry too small: {registry:?}");
}
