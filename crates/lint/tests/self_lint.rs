//! The workspace lints itself clean.
//!
//! This is the in-tree twin of the CI lint job: every rule runs over every
//! workspace source, and any finding — including a new raw I/O call, a
//! minted obs name, or an unannotated panic path — fails the build here
//! before it reaches CI.  Every `// lint:allow` in tree therefore carries a
//! reason that survived review.

use std::path::Path;

#[test]
fn the_workspace_self_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let report = disassoc_lint::lint_workspace(&root).expect("lint run completes");
    assert_eq!(report.rules_run, 5, "all five rules enabled");
    assert!(
        report.files_scanned >= 100,
        "only {} files scanned — the walker lost a root",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.findings.is_empty(),
        "workspace must self-lint clean:\n{}",
        rendered.join("\n")
    );
}
