//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access to
//! crates.io, so the workspace vendors the small slice of the `rand` 0.8 API
//! that the disassociation pipeline actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded via
//!   [`SeedableRng::seed_from_u64`],
//! * the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! * [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is of high statistical quality but is **not** the same
//! stream as upstream `rand`'s `StdRng` (ChaCha12); all uses in this
//! repository only require determinism given a seed, which this shim
//! provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with a uniform sampler over an interval. The element type is a
/// trait *parameter* of [`SampleRange`] (as in upstream rand) so that
/// integer literals in `gen_range(0..n)` unify with the expected type.
pub trait SampleUniform: Copy {
    /// Draws uniformly from the half-open interval `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from the closed interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Draws a uniform integer in `[0, bound)` without modulo bias
/// (Lemire's rejection method on the high 64 bits).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        // Reject the few values that would bias the low bucket.
        if lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample from an empty range");
                lo + <$t>::sample(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample from an empty range");
                lo + <$t>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Extension trait with the convenience sampling methods.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range; panics when the range is empty.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy; this offline shim derives the
    /// seed from the system clock instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (API-compatible subset of
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
