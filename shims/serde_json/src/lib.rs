//! Minimal offline stand-in for `serde_json`, rendering and parsing the
//! [`serde::Value`] tree of the vendored serde shim.
//!
//! Supports the functions used in this workspace: [`to_string`],
//! [`to_string_pretty`], [`to_vec_pretty`], [`from_str`], plus
//! [`to_value`]/[`from_value`] conversions. Output is valid JSON; integers
//! round-trip exactly (including `u64`), floats use Rust's shortest
//! round-trippable formatting, and non-finite floats serialize as `null`
//! (deserializing back to `NaN`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::{Error, Value};

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parses a value of type `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a deserializable value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` is Rust's shortest round-trippable float formatting;
                // force a fractional part so the value re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of JSON input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.eat_literal("\\u") {
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    0xFFFD
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "one".to_string()), (2, "two".to_string())];
        let json = to_string_pretty(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
