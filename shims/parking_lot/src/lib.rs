//! Minimal offline stand-in for `parking_lot`: a [`Mutex`] with the
//! non-poisoning API, backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error
/// (API-compatible subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
