//! Derive macros for the vendored `serde` shim.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the item
//! shapes used in this workspace — named-field structs, tuple structs and
//! enums (unit, newtype, tuple and struct variants) — without depending on
//! `syn`/`quote` (the build environment is offline). The only recognized
//! field attributes are `#[serde(skip)]` and `#[serde(default)]`; anything
//! else is a compile error so that silent divergence from upstream serde
//! semantics cannot creep in.
//!
//! Serialized forms mirror upstream serde's JSON conventions: structs become
//! objects, newtype structs are transparent, unit enum variants become
//! strings, and data-carrying variants become externally tagged
//! single-field objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed derive input.
struct Input {
    name: String,
    kind: InputKind,
}

enum InputKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Attribute flags recognized on fields.
#[derive(Default)]
struct AttrFlags {
    skip: bool,
    default: bool,
}

/// Consumes leading attributes (`#[...]`) from `tokens[*pos]`, returning the
/// accumulated `#[serde(...)]` flags.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> AttrFlags {
    let mut flags = AttrFlags::default();
    while *pos + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        let TokenTree::Group(group) = &tokens[*pos + 1] else {
            break;
        };
        if group.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if let Some(TokenTree::Ident(head)) = inner.first() {
            if head.to_string() == "serde" {
                let Some(TokenTree::Group(args)) = inner.get(1) else {
                    panic!("malformed #[serde] attribute");
                };
                for arg in args.stream() {
                    match arg {
                        TokenTree::Ident(flag) => match flag.to_string().as_str() {
                            "skip" => flags.skip = true,
                            "default" => flags.default = true,
                            other => panic!(
                                "unsupported #[serde({other})] attribute (the vendored serde \
                                 shim only understands `skip` and `default`)"
                            ),
                        },
                        TokenTree::Punct(p) if p.as_char() == ',' => {}
                        other => panic!("unsupported #[serde] argument: {other}"),
                    }
                }
            }
        }
        *pos += 2;
    }
    flags
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos], TokenTree::Ident(i) if i.to_string() == "pub") {
        *pos += 1;
        if *pos < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*pos] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Splits a token list on top-level commas. Angle brackets are plain
/// punctuation in token streams, so generic arguments (`HashMap<K, V>`) are
/// tracked by `<`/`>` depth; `->` never appears in the field types of this
/// workspace.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for tt in tokens {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
        }
        if angle_depth == 0 && matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
            if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
        } else {
            current.push(tt);
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Parses the fields of a named-field body `{ ... }`.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    split_commas(body.into_iter().collect())
        .into_iter()
        .map(|chunk| {
            let mut pos = 0;
            let flags = take_attrs(&chunk, &mut pos);
            skip_visibility(&chunk, &mut pos);
            let TokenTree::Ident(name) = &chunk[pos] else {
                panic!("expected field name, found {:?}", chunk[pos].to_string());
            };
            Field {
                name: name.to_string(),
                skip: flags.skip,
                default: flags.default,
            }
        })
        .collect()
}

/// Counts the fields of a tuple body `( ... )`; `#[serde]` attributes on
/// tuple fields are not supported.
fn parse_tuple_arity(body: TokenStream) -> usize {
    split_commas(body.into_iter().collect()).len()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let _ = take_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    pos += 1;
    let TokenTree::Ident(name) = &tokens[pos] else {
        panic!("expected type name");
    };
    let name = name.to_string();
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde shim cannot derive for generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                kind: InputKind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                kind: InputKind::TupleStruct(parse_tuple_arity(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input {
                name,
                kind: InputKind::UnitStruct,
            },
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(pos) else {
                panic!("expected enum body");
            };
            let variants = split_commas(g.stream().into_iter().collect())
                .into_iter()
                .map(|chunk| {
                    let mut vpos = 0;
                    let _ = take_attrs(&chunk, &mut vpos);
                    let TokenTree::Ident(vname) = &chunk[vpos] else {
                        panic!("expected variant name");
                    };
                    let kind = match chunk.get(vpos + 1) {
                        None => VariantKind::Unit,
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            VariantKind::Tuple(parse_tuple_arity(g.stream()))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            VariantKind::Struct(parse_named_fields(g.stream()))
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                            // Discriminant (`Variant = 3`): treat as unit.
                            VariantKind::Unit
                        }
                        other => panic!("unsupported variant body: {other:?}"),
                    };
                    Variant {
                        name: vname.to_string(),
                        kind,
                    }
                })
                .collect();
            Input {
                name,
                kind: InputKind::Enum(variants),
            }
        }
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        InputKind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)"
            )
        }
        InputKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        InputKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        InputKind::UnitStruct => "::serde::Value::Null".to_string(),
        InputKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__x0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_named_field_inits(fields: &[Field], obj_expr: &str, type_name: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if f.skip {
                format!("{n}: ::core::default::Default::default(),")
            } else if f.default {
                format!(
                    "{n}: match {obj_expr}.get(\"{n}\") {{\n\
                         Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                         None => ::core::default::Default::default(),\n\
                     }},"
                )
            } else {
                format!(
                    "{n}: ::serde::Deserialize::from_value({obj_expr}.get(\"{n}\").ok_or_else(|| \
                     ::serde::Error::custom(\"missing field `{n}` of `{type_name}`\"))?)?,"
                )
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        InputKind::NamedStruct(fields) => {
            let inits = gen_named_field_inits(fields, "__v", name);
            format!(
                "if __v.as_object().is_none() {{\n\
                     return Err(::serde::Error::custom(\"expected object for `{name}`\"));\n\
                 }}\n\
                 Ok({name} {{\n{inits}\n}})"
            )
        }
        InputKind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        InputKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for `{name}`\"))?;\n\
                 if __items.len() != {n} {{\n\
                     return Err(::serde::Error::custom(\"wrong arity for `{name}`\"));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        InputKind::UnitStruct => format!("Ok({name})"),
        InputKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __items = __payload.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array payload for `{name}::{vn}`\"))?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(::serde::Error::custom(\"wrong arity for `{name}::{vn}`\"));\n\
                                     }}\n\
                                     return Ok({name}::{vn}({items}));\n\
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits = gen_named_field_inits(fields, "__payload", name);
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     return Ok({name}::{vn} {{\n{inits}\n}});\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         _ => {{}}\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __payload) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             _ => {{}}\n\
                         }}\n\
                     }}\n\
                     _ => {{}}\n\
                 }}\n\
                 Err(::serde::Error::custom(\"unknown variant of `{name}`\"))",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
