//! Minimal offline stand-in for `proptest`.
//!
//! Provides the subset used by this workspace's property tests: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`any`], [`collection::vec`] / [`collection::btree_set`], the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! There is **no shrinking**: a failing case panics with the ordinary
//! assertion message. Generation is deterministic per test function (the
//! RNG is seeded from the test name), so failures are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates an RNG seeded from a test name (FNV-1a hash), so every test
    /// function draws a reproducible sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug)]
pub struct TestCaseReject;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let inner = (self.f)(self.base.generate(rng));
        inner.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates shrink the set below
    /// the drawn length, matching proptest's semantics loosely enough for
    /// size ranges starting at 0.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates ordered sets of `element` values with up to `size.end - 1`
    /// elements.
    pub fn btree_set<S: Strategy>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseReject, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-style function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // The immediately-called closure gives `prop_assume!` a
                    // scope to early-return out of.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::TestCaseReject> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    // A rejected case (prop_assume!) is simply skipped.
                    let _ = (__case, __outcome);
                }
            }
        )*
    };
}

/// Asserts a property; panics (failing the test) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality of a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality of a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in collection::vec(0u32..10, 0..5),
            w in (1u32..4).prop_flat_map(|n| collection::vec(0u32..10, (n as usize)..(n as usize + 1))),
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(!w.is_empty() && w.len() < 4);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
