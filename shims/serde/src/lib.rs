//! Minimal, dependency-free stand-in for `serde` (plus its derive macros).
//!
//! The build environment of this workspace has no access to crates.io, so
//! this shim provides the slice of serde that the pipeline uses: the
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (re-exported from the companion `serde_derive` proc-macro crate, with
//! support for the `#[serde(skip)]` and `#[serde(default)]` attributes), and
//! impls for the std types that appear in the data model.
//!
//! Unlike upstream serde there is no `Serializer`/`Deserializer` abstraction:
//! values convert to and from a single JSON-like [`Value`] tree, and the
//! companion `serde_json` shim renders/parses that tree. Round-trips through
//! `serde_json` are lossless for every type in this workspace (integers are
//! kept as `i128`, so `u64` seeds survive exactly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

/// A JSON-like value tree — the single interchange format of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (wide enough to hold `u64` and `i64` exactly).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced by deserialization (and re-used by the `serde_json` shim).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // Non-finite floats serialize as JSON null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

// Maps serialize as arrays of `[key, value]` pairs: keys in this workspace
// are not always strings, and the representation only needs to round-trip
// through the companion `serde_json` shim.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.collect()
    }
}

/// Iterates the `[key, value]` pairs of a serialized map.
fn map_pairs<'a, K: Deserialize, V: Deserialize>(
    v: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::custom("expected array of pairs"))?;
    Ok(items.iter().map(|pair| {
        let pair = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
        Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
    }))
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(),
            None
        );
    }

    #[test]
    fn map_round_trip_with_non_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "three".to_string());
        m.insert(7, "seven".to_string());
        let back = BTreeMap::<u32, String>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
