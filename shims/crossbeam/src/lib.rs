//! Minimal offline stand-in for `crossbeam`'s scoped threads, implemented on
//! top of `std::thread::scope` (stable since Rust 1.63).
//!
//! Only the subset used by this workspace is provided: [`scope`] and
//! [`Scope::spawn`], where the spawned closure receives the scope again so
//! that workers could spawn nested work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;

/// The error half of [`thread::Result`](std::thread::Result): a boxed panic
/// payload.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`] and to every spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope, mirroring
    /// `crossbeam::thread::Scope::spawn`.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which threads borrowing the environment can be
/// spawned; all of them are joined before `scope` returns.
///
/// Unlike `crossbeam`, a panicking child panics the scope directly (via
/// `std::thread::scope`), so the `Err` variant is never produced — callers
/// using `.expect(..)` behave identically.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(0u64);
        super::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    let s: u64 = chunk.iter().sum();
                    *sums.lock().unwrap() += s;
                });
            }
        })
        .unwrap();
        assert_eq!(sums.into_inner().unwrap(), 10);
    }
}
