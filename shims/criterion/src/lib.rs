//! Minimal offline stand-in for `criterion`.
//!
//! Implements the subset used by this workspace's benches: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, every benchmark runs a short
//! warm-up followed by `sample_size` timed iterations and prints the mean
//! and minimum wall-clock time per iteration. That keeps `cargo bench`
//! useful for spotting order-of-magnitude regressions without any external
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (statistics would be finalized here in criterion).
    pub fn finish(self) {}
}

/// Identifier of a benchmark (name and/or parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter rendering only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the timing loop of one benchmark.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording `samples` iterations after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut bencher);
    if bencher.times.is_empty() {
        println!("{id:<40} (no measurements)");
        return;
    }
    let total: Duration = bencher.times.iter().sum();
    let mean = total / bencher.times.len() as u32;
    let min = bencher.times.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<40} mean {mean:>12?}   min {min:>12?}   ({} iters)",
        bencher.times.len()
    );
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(10u32), &10u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
